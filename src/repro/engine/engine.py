"""`MACEngine`: a long-lived, stateful MAC query engine.

The free-function API (``repro.mac_search``) rebuilds the whole pipeline
— Lemma-1 range filter, maximal (k,t)-core, r-dominance graph — on every
call.  The engine amortizes that work across queries the way production
community-search systems amortize their distance and attribute indexes:
it is constructed once from a :class:`RoadSocialNetwork` and owns

* the shared G-tree accelerator (built at most once, on the network),
* an LRU cache of Lemma-1 range-filter results + coreness arrays keyed
  on the canonicalized ``(Q, t)``,
* an LRU cache of maximal (k,t)-cores and their attribute matrices
  keyed on ``(Q, k, t)``,
* an LRU cache of r-dominance graphs keyed on ``(Q, k, t, R)``,
* an LRU cache of complete results keyed on the full request identity,
  so byte-identical repeated queries (the hot case under heavy traffic)
  are served without re-running the search at all.

Requests are typed (:class:`MACRequest`), single queries run through
:meth:`MACEngine.search`, independent queries through
:meth:`MACEngine.search_batch` on a thread pool sharing the caches, and
:meth:`MACEngine.explain` returns the resolved plan without running it.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterable, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.core.api import MACSearchResult
from repro.core.global_search import GlobalSearch, SearchStats
from repro.core.local_search import LocalSearch
from repro.core.query import MACQuery, PartitionEntry
from repro.deadline import Deadline
from repro.dominance.graph import DominanceGraph
from repro.engine.cache import CacheStats, LRUCache
from repro.engine.request import BACKENDS, MACRequest
from repro.errors import DeadlineExceeded, QueryError
from repro.graph.core import core_decomposition
from repro.kernels import (
    FlatGraph,
    core_numbers,
    delete_edge_rows,
    insert_edge_rows,
    k_core_component,
    repair_delete_rows,
    repair_insert_rows,
    resolve_backend,
    search_flatgraph,
)
from repro.live.invalidate import (
    RepairDelta,
    attribute_dirty,
    edge_dirty_delete,
    edge_dirty_insert,
)
from repro.live.kcore import repair_delete, repair_insert
from repro.live.mutations import (
    AddSocialEdge,
    MoveUser,
    RemoveSocialEdge,
    UpdateAttributes,
    normalize_batch,
    validate_batch,
)
from repro.social.roadsocial import (
    KTCore,
    RoadSocialNetwork,
    kt_core_from_coreness,
)

#: Stages whose wall time the engine accounts separately.
STAGES = ("filter", "core", "dominance", "search")

SEARCHER_NAMES = {
    ("global", "nc"): "GS-NC",
    ("global", "topj"): "GS-T",
    ("local", "nc"): "LS-NC",
    ("local", "topj"): "LS-T",
}


@dataclass
class _PreparedFilter:
    """Cached per-(Q, t) state: Lemma-1 filter plus coreness arrays.

    On the flat backend the stage also materializes the CSR view of the
    filtered subgraph and the per-row coreness array, so every later
    (Q, k, t) core extraction reuses them instead of re-deriving flat
    state per k.
    """

    query_distance: dict[int, float]
    filtered: object  # AdjacencyGraph of the t-bounded social subgraph
    coreness: dict[int, int]
    max_coreness: int
    flat: FlatGraph | None = None
    core_rows: object | None = None  # np.ndarray aligned with flat rows


@dataclass
class _PreparedCore:
    """Cached per-(Q, k, t) state: H^t_k and its attribute matrix.

    ``search_flat`` is the row-sorted CSR view of H^t_k the flat search
    backend peels over; it is built lazily on the first flat search of
    this core and memoized here so repeat queries (and other (R, j,
    problem) variations over the same core) reuse it.
    """

    core: KTCore | None
    attributes: dict[int, np.ndarray] | None
    search_flat: FlatGraph | None = None


@dataclass(frozen=True)
class EngineTelemetry:
    """Aggregate counters of an engine instance.

    ``stage_seconds`` holds the cumulative wall time spent *building*
    each pipeline stage (cache hits contribute nothing) plus the time
    spent in the search phase — the observability hook that makes
    per-stage backend wins measurable.  ``deadline_exceeded`` counts
    requests aborted by their :class:`~repro.errors.DeadlineExceeded`
    budget (the serving metric that distinguishes "slow" from "hung");
    ``partial_results`` counts anytime requests that degraded to a
    best-so-far ``partial=True`` answer instead.  ``mutations`` (total
    and per-kind) and ``cache_evicted_by_mutation`` account the live
    update path of :meth:`MACEngine.apply` — the eviction counter is
    how footprint-scoped invalidation is made observable.
    """

    searches: int
    batches: int
    filter: CacheStats
    core: CacheStats
    dominance: CacheStats
    result: CacheStats
    stage_seconds: dict = field(default_factory=dict)
    deadline_exceeded: int = 0
    partial_results: int = 0
    mutations: int = 0
    mutations_by_kind: dict = field(default_factory=dict)
    cache_evicted_by_mutation: int = 0

    @property
    def hits(self) -> int:
        return (
            self.filter.hits + self.core.hits + self.dominance.hits
            + self.result.hits
        )

    @property
    def misses(self) -> int:
        return (
            self.filter.misses + self.core.misses + self.dominance.misses
            + self.result.misses
        )


def merge_telemetry(snapshots: Iterable[EngineTelemetry]) -> EngineTelemetry:
    """Sum telemetry snapshots into one aggregate view.

    The worker tier (:mod:`repro.pool`) runs one engine per process;
    ``/v1/metrics`` reports the fleet as if it were a single engine by
    merging the per-worker snapshots — counters and stage seconds add,
    cache sizes add (each worker owns its LRU), and capacities add too
    (the fleet-wide number of cacheable entries).
    """
    searches = batches = deadline_exceeded = partial_results = 0
    mutations = cache_evicted_by_mutation = 0
    mutations_by_kind: dict = {}
    cache_sums = {
        name: [0, 0, 0, 0]
        for name in ("filter", "core", "dominance", "result")
    }
    stage_seconds: dict = {}
    for tel in snapshots:
        searches += tel.searches
        batches += tel.batches
        deadline_exceeded += tel.deadline_exceeded
        partial_results += tel.partial_results
        mutations += tel.mutations
        cache_evicted_by_mutation += tel.cache_evicted_by_mutation
        for kind, n in tel.mutations_by_kind.items():
            mutations_by_kind[kind] = mutations_by_kind.get(kind, 0) + n
        for name, sums in cache_sums.items():
            stats = getattr(tel, name)
            sums[0] += stats.hits
            sums[1] += stats.misses
            sums[2] += stats.size
            sums[3] += stats.capacity
        for stage, seconds in tel.stage_seconds.items():
            stage_seconds[stage] = stage_seconds.get(stage, 0.0) + seconds
    merged_caches = {
        name: CacheStats(
            hits=sums[0], misses=sums[1], size=sums[2], capacity=sums[3]
        )
        for name, sums in cache_sums.items()
    }
    return EngineTelemetry(
        searches=searches,
        batches=batches,
        stage_seconds=stage_seconds,
        deadline_exceeded=deadline_exceeded,
        partial_results=partial_results,
        mutations=mutations,
        mutations_by_kind=mutations_by_kind,
        cache_evicted_by_mutation=cache_evicted_by_mutation,
        **merged_caches,
    )


@dataclass
class QueryPlan:
    """The resolved execution plan of a request (``explain`` output).

    ``algorithm`` is the final choice when it can be resolved from the
    request or cached state; an ``"auto"`` request whose (k,t)-core has
    not been materialized yet resolves provisionally (see ``notes``).
    """

    request: MACRequest
    problem: str
    algorithm: str
    algorithm_reason: str
    searcher: str
    filter_strategy: str
    backend: str
    search_backend: str
    frontier: str
    gtree_built: bool
    cached: dict[str, bool]
    feasible: bool | None
    htk_vertices: int | None
    htk_upper_bound: int
    stage_seconds: dict = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def summary(self) -> str:
        lines = [
            f"plan for {self.request.describe()}:",
            f"  searcher        {self.searcher} ({self.algorithm_reason})",
            f"  range filter    {self.filter_strategy} "
            f"(G-tree built: {self.gtree_built})",
            f"  backend         {self.backend}",
            f"  search          backend={self.search_backend}, "
            f"frontier={self.frontier}",
            f"  cached stages   "
            + ", ".join(f"{k}={v}" for k, v in self.cached.items()),
            f"  |H^t_k|         "
            + (
                str(self.htk_vertices)
                if self.htk_vertices is not None
                else f"<= {self.htk_upper_bound} (not materialized)"
            ),
            f"  feasible        "
            + ("unknown" if self.feasible is None else str(self.feasible)),
            f"  stage seconds   "
            + ", ".join(
                f"{k}={v:.3f}" for k, v in self.stage_seconds.items()
            )
            + " (engine totals)",
        ]
        lines.extend(f"  note: {n}" for n in self.notes)
        return "\n".join(lines)


class MACEngine:
    """A stateful query engine over one road-social network.

    Parameters
    ----------
    network:
        The substrate all requests run against.  The network must only
        be mutated through :meth:`apply`, which repairs or evicts the
        affected cached state; out-of-band mutation leaves the caches
        silently stale.
    use_gtree:
        Default Lemma-1 strategy for requests that leave
        ``MACRequest.use_gtree`` as ``None``: ``True`` / ``False`` force
        it; ``"auto"`` uses the G-tree when the road network has at
        least ``gtree_auto_threshold`` vertices.
    backend:
        Default compute backend for requests that leave
        ``MACRequest.backend`` as ``None``: ``"flat"`` runs the
        vectorized CSR kernels (``repro.kernels``), ``"python"`` the
        original per-vertex implementations, ``"auto"`` picks by social
        network size.  Both produce identical results; the selector is
        resolved once per request so all cache keys are canonical.
    eager:
        Build the G-tree at construction time (only when the resolved
        default strategy uses it) instead of on first use.
    auto_local_threshold:
        ``algorithm="auto"`` requests run the exact global search when
        ``|H^t_k|`` is at most this, the local search otherwise.
    result_cache_size:
        Capacity of the full-result LRU (0 disables result caching;
        the staged pipeline caches stay active either way).
    """

    def __init__(
        self,
        network: RoadSocialNetwork,
        *,
        use_gtree: bool | str = "auto",
        gtree_auto_threshold: int = 2048,
        gtree_leaf_size: int = 64,
        auto_local_threshold: int = 256,
        backend: str = "auto",
        filter_cache_size: int = 128,
        core_cache_size: int = 128,
        dominance_cache_size: int = 64,
        result_cache_size: int = 256,
        eager: bool = False,
    ) -> None:
        if use_gtree not in (True, False, "auto"):
            raise QueryError(
                f"use_gtree must be True, False or 'auto', got {use_gtree!r}"
            )
        if backend not in BACKENDS:
            raise QueryError(
                f"backend must be one of {BACKENDS}, got {backend!r}"
            )
        self.network = network
        self._default_backend = backend
        self.gtree_leaf_size = gtree_leaf_size
        self.auto_local_threshold = auto_local_threshold
        if use_gtree == "auto":
            self._default_use_gtree = (
                network.road.num_vertices >= gtree_auto_threshold
            )
        else:
            self._default_use_gtree = bool(use_gtree)
        self._filter_cache = LRUCache(filter_cache_size)
        self._core_cache = LRUCache(core_cache_size)
        self._gd_cache = LRUCache(dominance_cache_size)
        self._result_cache = (
            LRUCache(result_cache_size) if result_cache_size > 0 else None
        )
        self._counter_lock = threading.Lock()
        self._mutate_lock = threading.Lock()
        self._searches = 0
        self._batches = 0
        self._deadline_exceeded = 0
        self._partial_results = 0
        self._mutations = 0
        self._mutations_by_kind: dict[str, int] = {}
        self._cache_evicted_by_mutation = 0
        self._delta_seq = 0
        self._stage_seconds = {stage: 0.0 for stage in STAGES}
        if eager:
            self.prepare()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def prepare(self) -> None:
        """Eagerly build network-level indexes the default plan will use."""
        if self._default_use_gtree:
            # Raw selector: the G-tree resolves "auto" by *road* size
            # (its per-kernel rule), same as a lazy first query would.
            self.network.build_gtree(
                leaf_size=self.gtree_leaf_size,
                backend=self._default_backend,
            )
        if self._resolve_backend_selector(self._default_backend) == "flat":
            self.network.road.flat()

    def save(self, path, *, compress: bool = True) -> dict:
        """Persist the prepared state as an index snapshot at ``path``.

        Serializes everything expensive the engine has built so far —
        the shared G-tree, the road CSR view, and every live entry of
        the filter/core/dominance stage caches — plus a manifest with
        the format version, a content fingerprint of the network, and
        the engine configuration.  Returns the manifest dict.  See
        :mod:`repro.store` for the format and guarantees.

        ``compress=False`` stores the array payloads uncompressed so
        :meth:`load` can open them as shared read-only memory maps
        (``mmap=True``) — the layout the worker tier serves from.
        """
        from repro.store.snapshot import save_snapshot

        return save_snapshot(self, path, compress=compress)

    @classmethod
    def load(cls, path, network: RoadSocialNetwork, **overrides) -> MACEngine:
        """Warm-start an engine from a snapshot written by :meth:`save`.

        ``network`` must be content-identical to the snapshotted one
        (fingerprint-checked; :class:`~repro.errors.SnapshotError` on
        mismatch, corruption, or format-version skew).  The restored
        engine serves its first query on snapshotted state with zero
        index builds — ``telemetry().stage_seconds`` stays 0.0 for the
        filter/core/dominance stages until a genuinely new key arrives.
        ``overrides`` are :class:`MACEngine` constructor keywords that
        win over the recorded configuration; ``mmap=True`` additionally
        opens uncompressed array payloads as shared read-only memory
        maps (see :func:`repro.store.snapshot.load_snapshot`).
        """
        from repro.store.snapshot import load_snapshot

        return load_snapshot(path, network, **overrides)

    def clear_caches(self) -> None:
        """Drop all cached query state (keeps the network's G-tree)."""
        self._filter_cache.clear()
        self._core_cache.clear()
        self._gd_cache.clear()
        if self._result_cache is not None:
            self._result_cache.clear()

    def telemetry(self) -> EngineTelemetry:
        """Aggregate cache and search counters since construction."""
        with self._counter_lock:
            searches, batches = self._searches, self._batches
            deadline_exceeded = self._deadline_exceeded
            partial_results = self._partial_results
            mutations = self._mutations
            mutations_by_kind = dict(self._mutations_by_kind)
            cache_evicted_by_mutation = self._cache_evicted_by_mutation
            stage_seconds = dict(self._stage_seconds)
        disabled = CacheStats(hits=0, misses=0, size=0, capacity=0)
        return EngineTelemetry(
            searches=searches,
            batches=batches,
            filter=self._filter_cache.stats,
            core=self._core_cache.stats,
            dominance=self._gd_cache.stats,
            result=(
                self._result_cache.stats
                if self._result_cache is not None
                else disabled
            ),
            stage_seconds=stage_seconds,
            deadline_exceeded=deadline_exceeded,
            partial_results=partial_results,
            mutations=mutations,
            mutations_by_kind=mutations_by_kind,
            cache_evicted_by_mutation=cache_evicted_by_mutation,
        )

    def reset_telemetry(self) -> None:
        """Zero every counter while keeping all cached state.

        A forked worker process inherits the parent's warm caches *and*
        its counters; resetting at worker boot makes the per-process
        telemetry mean "work served by this worker", so the merged
        fleet view (:func:`merge_telemetry`) adds up cleanly.
        """
        with self._counter_lock:
            self._searches = 0
            self._batches = 0
            self._deadline_exceeded = 0
            self._partial_results = 0
            self._mutations = 0
            self._mutations_by_kind = {}
            self._cache_evicted_by_mutation = 0
            # _delta_seq is state, not telemetry: it tracks how far this
            # engine has advanced past its snapshot and must survive the
            # per-worker counter reset at fork time.
            self._stage_seconds = {stage: 0.0 for stage in STAGES}
        for cache in (
            self._filter_cache,
            self._core_cache,
            self._gd_cache,
            self._result_cache,
        ):
            if cache is not None:
                cache.reset_stats()

    def _account_stage_times(self, times: dict[str, float]) -> None:
        with self._counter_lock:
            for stage, seconds in times.items():
                self._stage_seconds[stage] += seconds

    # ------------------------------------------------------------------
    # live mutations
    # ------------------------------------------------------------------
    @property
    def delta_seq(self) -> int:
        """Mutation batches applied since construction (or snapshot load).

        A snapshot-loaded engine fast-forwards through the snapshot's
        delta log, so ``delta_seq`` equals the highest replayed sequence
        number — the "delta depth" surfaced by ``repro index info`` and
        ``/v1/healthz``.
        """
        with self._counter_lock:
            return self._delta_seq

    def apply(self, mutations) -> dict:
        """Apply a batch of live mutations to the network and caches.

        ``mutations`` is an iterable of :mod:`repro.live` mutation
        objects and/or their wire dicts.  The whole batch is validated
        first (:class:`~repro.errors.MutationError` rejects it leaving
        everything untouched — batches are all-or-nothing), then applied
        in order:

        * social edge inserts/deletes mutate the network, then *repair*
          every warm (Q, t) filter entry containing both endpoints —
          bounded incremental k-core maintenance on the entry's own
          representation (flat CSR kernels or the python reference)
          instead of a full re-peel — and evict only the downstream
          (k,t)-core / dominance / result entries whose member sets the
          edge can actually have changed (:mod:`repro.live.invalidate`);
        * attribute updates evict exactly the entries whose member sets
          contain the user;
        * ``move_user`` / ``update_road_weight`` change query distances,
          whose footprint cached state cannot bound, so they evict
          globally (road-weight updates also drop the G-tree; the road
          CSR weight array is patched in place).

        Repair is copy-on-write: in-flight queries holding a cached
        entry keep a consistent pre-mutation view (they serialize as if
        ordered before the batch), while every later query sees the
        repaired state.  Returns a summary dict with ``applied``,
        ``by_kind``, ``evicted``, ``repaired_entries`` and the new
        ``delta_seq``.
        """
        batch = normalize_batch(mutations)
        with self._mutate_lock:
            validate_batch(self.network, batch)
            evicted = repaired = 0
            by_kind: dict[str, int] = {}
            for m in batch:
                entry_evicted, entry_repaired = self._apply_one(m)
                evicted += entry_evicted
                repaired += entry_repaired
                by_kind[m.kind] = by_kind.get(m.kind, 0) + 1
            with self._counter_lock:
                self._mutations += len(batch)
                for kind, n in by_kind.items():
                    self._mutations_by_kind[kind] = (
                        self._mutations_by_kind.get(kind, 0) + n
                    )
                self._cache_evicted_by_mutation += evicted
                self._delta_seq += 1
                seq = self._delta_seq
        return {
            "applied": len(batch),
            "by_kind": by_kind,
            "evicted": evicted,
            "repaired_entries": repaired,
            "delta_seq": seq,
        }

    def _apply_one(self, m) -> tuple[int, int]:
        """Apply one validated mutation; returns (evicted, repaired)."""
        if isinstance(m, (AddSocialEdge, RemoveSocialEdge)):
            return self._apply_social_edge(
                m.u, m.v, inserted=isinstance(m, AddSocialEdge)
            )
        if isinstance(m, UpdateAttributes):
            self.network.social.set_attributes(m.user, m.attributes)
            return self._evict_for_attributes(m.user), 0
        if isinstance(m, MoveUser):
            self.network.social.set_location(m.user, m.point)
            return self._evict_all(), 0
        # UpdateRoadWeight: the road CSR is weight-patched in place by
        # add_edge; the G-tree's distance matrices cannot be and must go.
        self.network.road.add_edge(m.u, m.v, m.weight)
        self.network.drop_gtree()
        return self._evict_all(), 0

    def _evict_all(self) -> int:
        """Global eviction: query distances changed, no bound on the blast."""
        n = 0
        for cache in (
            self._filter_cache,
            self._core_cache,
            self._gd_cache,
            self._result_cache,
        ):
            if cache is not None:
                n += cache.evict_if(lambda _key, _value: True)
        return n

    def _evict_for_attributes(self, user: int) -> int:
        """Evict exactly the entries whose member sets contain ``user``."""
        evicted = 0
        kept_cores: set = set()

        def core_pred(key, state) -> bool:
            members = None if state.core is None else state.core.graph
            if attribute_dirty(members, user):
                return True
            kept_cores.add(key)
            return False

        evicted += self._core_cache.evict_if(core_pred)
        evicted += self._gd_cache.evict_if(
            lambda _key, gd: attribute_dirty(gd, user)
        )
        if self._result_cache is not None:
            filter_entries = dict(self._filter_cache.items())

            def result_pred(key, _value) -> bool:
                backend = self._resolve_backend_selector(
                    key[8] if key[8] is not None else self._default_backend
                )
                if (key[0], key[1], key[2], backend) in kept_cores:
                    return False  # surviving core entry: user not a member
                prep = filter_entries.get((key[0], key[2], backend))
                if prep is not None:
                    # No member set to consult, but the (Q, t) filter
                    # bounds it: a user outside the range filter cannot
                    # be in any community under it.
                    return user in prep.query_distance
                return True

            evicted += self._result_cache.evict_if(result_pred)
        return evicted

    def _apply_social_edge(self, u: int, v: int, inserted: bool) -> tuple[int, int]:
        """Mutate the social graph, repair warm filters, evict by footprint."""
        graph = self.network.social.graph
        if inserted:
            graph.add_edge(u, v)
        else:
            graph.remove_edge(u, v)
        deltas: dict[tuple, RepairDelta] = {}
        warm: set[tuple] = set()
        repaired = 0
        for fkey, prep in self._filter_cache.items():
            warm.add(fkey)
            if u in prep.query_distance and v in prep.query_distance:
                new_prep, changed = self._repaired_filter_entry(
                    prep, u, v, inserted
                )
                self._filter_cache.put(fkey, new_prep)
                deltas[fkey] = RepairDelta(
                    changed=changed, coreness=new_prep.coreness
                )
                repaired += 1
        evicted = 0
        kept_cores: set = set()

        def dirty(fkey: tuple, k: int, members) -> bool:
            delta = deltas.get(fkey)
            if delta is None and fkey in warm:
                # Warm filter entry without both endpoints: the edge is
                # outside this filtered subgraph entirely.
                return False
            if inserted:
                return edge_dirty_insert(k, members, delta, u, v)
            return edge_dirty_delete(members, u, v)

        def core_pred(key, state) -> bool:
            members = None if state.core is None else state.core.graph
            if dirty((key[0], key[2], key[3]), key[1], members):
                return True
            kept_cores.add(key)
            return False

        evicted += self._core_cache.evict_if(core_pred)
        evicted += self._gd_cache.evict_if(
            lambda key, gd: dirty((key[0], key[2], key[4]), key[1], gd)
        )
        if self._result_cache is not None:

            def result_pred(key, _value) -> bool:
                backend = self._resolve_backend_selector(
                    key[8] if key[8] is not None else self._default_backend
                )
                if (key[0], key[1], key[2], backend) in kept_cores:
                    return False  # its (k,t)-core entry was proven clean
                if (key[0], key[2], backend) in warm and (
                    (key[0], key[2], backend) not in deltas
                ):
                    return False  # edge outside the entry's filtered graph
                return True

            evicted += self._result_cache.evict_if(result_pred)
        return evicted, repaired

    def _repaired_filter_entry(
        self, prep: _PreparedFilter, u: int, v: int, inserted: bool
    ) -> tuple[_PreparedFilter, dict]:
        """Copy-on-write repair of one warm (Q, t) entry after an edge op.

        The cached entry is never mutated in place — queries already
        holding it keep a consistent pre-mutation view; the repaired
        copy replaces it in the cache.  The entry's own representation
        is the backend seam: flat entries splice the CSR and run the
        row kernels of :mod:`repro.kernels.livecore`, python entries the
        dict reference of :mod:`repro.live.kcore`.
        """
        filtered = prep.filtered.copy()
        if inserted:
            filtered.add_edge(u, v)
        else:
            filtered.remove_edge(u, v)
        coreness = dict(prep.coreness)
        if prep.flat is not None:
            ru, rv = prep.flat.row_of(u), prep.flat.row_of(v)
            if inserted:
                flat = insert_edge_rows(prep.flat, ru, rv)
                core_rows, changed_rows = repair_insert_rows(
                    flat, prep.core_rows.copy(), ru, rv
                )
            else:
                flat = delete_edge_rows(prep.flat, ru, rv)
                core_rows, changed_rows = repair_delete_rows(
                    flat, prep.core_rows.copy(), ru, rv
                )
            changed = {}
            for row in changed_rows.tolist():
                vid = flat.ids[row]
                coreness[vid] = changed[vid] = int(core_rows[row])
        else:
            flat = core_rows = None
            if inserted:
                changed = repair_insert(filtered, coreness, u, v)
            else:
                changed = repair_delete(filtered, coreness, u, v)
        new_prep = _PreparedFilter(
            query_distance=prep.query_distance,
            filtered=filtered,
            coreness=coreness,
            max_coreness=max(coreness.values(), default=0),
            flat=flat,
            core_rows=core_rows,
        )
        return new_prep, changed

    # ------------------------------------------------------------------
    # the staged, cached pipeline
    # ------------------------------------------------------------------
    def _check(self, request: MACRequest) -> MACRequest:
        if not isinstance(request, MACRequest):
            raise QueryError(
                f"expected a MACRequest, got {type(request).__name__}; "
                f"build one with MACRequest.make(...)"
            )
        d = self.network.social.dimensionality
        if request.region.num_attributes != d:
            raise QueryError(
                f"region is for d={request.region.num_attributes} attributes "
                f"but the network has d={d}"
            )
        return request

    def _resolve_use_gtree(self, request: MACRequest) -> bool:
        if request.use_gtree is None:
            return self._default_use_gtree
        return request.use_gtree

    def _resolve_backend_selector(self, selector: str) -> str:
        """Concrete ``"flat"``/``"python"`` for an ``"auto"`` selector.

        ``"auto"`` is resolved once, against the social-network size (the
        substrate every staged kernel runs on), so cache keys stay
        canonical across requests that spell the default differently.
        """
        return resolve_backend(selector, self.network.social.num_users)

    def _resolve_backend(self, request: MACRequest) -> str:
        selector = (
            request.backend
            if request.backend is not None
            else self._default_backend
        )
        return self._resolve_backend_selector(selector)

    def _prepared_filter(
        self,
        request: MACRequest,
        use_gtree: bool,
        backend: str,
        tel: dict,
        times: dict,
        deadline: Deadline | None = None,
    ) -> _PreparedFilter:
        def build() -> _PreparedFilter:
            if deadline is not None:
                deadline.check("range filter")
            start = time.perf_counter()
            # The road stage gets the *raw* selector: an "auto" request
            # lets bounded Dijkstra apply its own per-kernel rule (flat
            # measures slower there), while the resolved ``backend``
            # governs the social kernels below and the cache keys.
            selector = (
                request.backend
                if request.backend is not None
                else self._default_backend
            )
            dq = self.network.query_distance_filter(
                request.query, request.t,
                use_gtree=use_gtree, backend=selector,
            )
            filtered = self.network.social.graph.subgraph(dq)
            flat = core_rows = None
            if backend == "flat" and filtered.num_vertices:
                flat = FlatGraph.from_adjacency(filtered)
                core_rows = core_numbers(flat)
                coreness = flat.relabel(core_rows)
            else:
                coreness = core_decomposition(filtered, backend=backend)
            times["filter"] = time.perf_counter() - start
            return _PreparedFilter(
                query_distance=dq,
                filtered=filtered,
                coreness=coreness,
                max_coreness=max(coreness.values(), default=0),
                flat=flat,
                core_rows=core_rows,
            )

        prep, hit = self._filter_cache.get_or_create(
            request.filter_key + (backend,), build, deadline
        )
        tel["filter"] = "hit" if hit else "miss"
        return prep

    def _extract_core(
        self, prep: _PreparedFilter, request: MACRequest
    ) -> KTCore | None:
        """H^t_k from prepared filter state (flat fast path when cached)."""
        if prep.flat is not None:
            flat = prep.flat
            if any(q not in flat for q in request.query):
                return None
            comp = k_core_component(
                flat, flat.rows_of(request.query), request.k, prep.core_rows
            )
            if comp is None:
                return None
            graph = prep.filtered.subgraph(flat.select_ids(comp))
            return KTCore(
                graph=graph,
                query_distance={
                    v: prep.query_distance[v] for v in graph.vertices()
                },
            )
        return kt_core_from_coreness(
            prep.filtered,
            prep.coreness,
            prep.query_distance,
            request.query,
            request.k,
        )

    def _prepared_core(
        self,
        request: MACRequest,
        use_gtree: bool,
        backend: str,
        tel: dict,
        times: dict,
        deadline: Deadline | None = None,
    ) -> _PreparedCore:
        def build() -> _PreparedCore:
            prep = self._prepared_filter(
                request, use_gtree, backend, tel, times, deadline
            )
            if deadline is not None:
                deadline.check("(k,t)-core extraction")
            start = time.perf_counter()
            try:
                if request.k > prep.max_coreness:
                    return _PreparedCore(None, None)
                core = self._extract_core(prep, request)
                if core is None:
                    return _PreparedCore(None, None)
                attrs = self.network.social.attributes_for(
                    core.graph.vertices()
                )
                return _PreparedCore(core, attrs)
            finally:
                times["core"] = time.perf_counter() - start

        state, hit = self._core_cache.get_or_create(
            request.core_key + (backend,), build, deadline
        )
        tel["core"] = "hit" if hit else "miss"
        if hit:
            # The filter stage was skipped entirely — record the reuse.
            tel.setdefault("filter", "hit")
        return state

    def _dominance(
        self,
        request: MACRequest,
        core_state: _PreparedCore,
        backend: str,
        tel: dict,
        times: dict,
        deadline: Deadline | None = None,
    ) -> DominanceGraph:
        def build() -> DominanceGraph:
            if deadline is not None:
                deadline.check("r-dominance construction")
            start = time.perf_counter()
            try:
                return DominanceGraph(
                    core_state.attributes, request.region, backend=backend
                )
            finally:
                times["dominance"] = time.perf_counter() - start

        gd, hit = self._gd_cache.get_or_create(
            request.dominance_key + (backend,), build, deadline
        )
        tel["dominance"] = "hit" if hit else "miss"
        return gd

    def _resolve_algorithm(
        self, request: MACRequest, htk_vertices: int | None
    ) -> tuple[str, str]:
        if request.algorithm != "auto":
            return request.algorithm, "requested"
        if htk_vertices is None:
            return (
                "local",
                f"auto (provisional): |H^t_k| unknown, assuming "
                f"> {self.auto_local_threshold}",
            )
        if htk_vertices <= self.auto_local_threshold:
            return (
                "global",
                f"auto: |H^t_k|={htk_vertices} <= "
                f"{self.auto_local_threshold}",
            )
        return (
            "local",
            f"auto: |H^t_k|={htk_vertices} > {self.auto_local_threshold}",
        )

    def _search_flat(self, core_state: _PreparedCore) -> FlatGraph:
        """Row-sorted CSR view of H^t_k (built once per prepared core).

        A benign race under concurrent first use: both builders produce
        identical views and the last assignment wins.
        """
        if core_state.search_flat is None:
            core_state.search_flat = search_flatgraph(core_state.core.graph)
        return core_state.search_flat

    def _run_searcher(
        self,
        request: MACRequest,
        algorithm: str,
        core_state: _PreparedCore,
        gd: DominanceGraph,
        backend: str,
        deadline: Deadline | None = None,
    ) -> tuple[list[PartitionEntry], SearchStats, bool]:
        core = core_state.core
        flat = self._search_flat(core_state) if backend == "flat" else None
        anytime = request.anytime and deadline is not None
        if algorithm == "global":
            searcher = GlobalSearch(
                core.graph,
                gd,
                request.query,
                request.k,
                request.region,
                max_partitions=request.max_partitions,
                refinement=request.refinement,
                time_budget=request.time_budget,
                deadline=deadline,
                flat=flat,
                anytime=anytime,
            )
        else:
            searcher = LocalSearch(
                core.graph,
                gd,
                request.query,
                request.k,
                request.region,
                strategy=request.strategy,
                max_candidates=request.max_candidates,
                certification=request.certification,
                deadline=deadline,
                flat=flat,
                anytime=anytime,
            )
        if request.problem == "nc":
            partitions = searcher.search_nc()
        else:
            partitions = searcher.search_topj(request.j)
        return partitions, searcher.stats, searcher.partial

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def search(self, request: MACRequest) -> MACSearchResult:
        """Run one request end to end, reusing every cached stage.

        With result caching on, the cached computation never escapes
        directly: every caller (the one that computed it included) gets
        a fresh ``MACSearchResult`` wrapper with its own partition list
        and telemetry, so reordering/clearing ``result.partitions``
        cannot poison the cache.  The ``PartitionEntry`` objects inside
        are shared — treat results as read-only, as everywhere in this
        package.

        A request with a ``deadline`` budget raises the typed
        :class:`~repro.errors.DeadlineExceeded` once the budget expires
        (checked at every stage boundary and inside the search loops);
        nothing half-built is cached, so a later retry with a larger
        budget starts clean.
        """
        request = self._check(request)
        try:
            return self._search_checked(request)
        except DeadlineExceeded:
            with self._counter_lock:
                self._deadline_exceeded += 1
            raise

    def _search_checked(self, request: MACRequest) -> MACSearchResult:
        start = time.perf_counter()
        deadline = Deadline.of(request.deadline)
        with self._counter_lock:
            self._searches += 1
        if self._result_cache is None:
            result = self._execute(request, deadline)
            result.extra["engine"]["cache"]["result"] = "off"
            if result.partial:
                with self._counter_lock:
                    self._partial_results += 1
            return result
        if request.anytime and deadline is not None:
            # An anytime answer may be partial, and partial results must
            # never enter the result cache — they would be served as the
            # truth to later exact requests for the same key.  Bypass the
            # build-once path: peek, execute on miss, publish complete
            # results only.
            template, hit = self._result_cache.peek(request.result_key)
            if not hit:
                template = self._execute(request, deadline)
                if template.partial:
                    with self._counter_lock:
                        self._partial_results += 1
                else:
                    self._result_cache.put(request.result_key, template)
        else:
            # A result-cache hit is served instantly, deadline or not; a
            # miss runs the budgeted pipeline (the deadline also bounds
            # any wait on another thread's in-flight build of the same
            # key).
            template, hit = self._result_cache.get_or_create(
                request.result_key,
                lambda: self._execute(request, deadline),
                deadline,
            )
        entry = dict(template.extra["engine"])
        entry["label"] = request.label
        if hit:
            entry["cache"] = {"result": "hit"}
            entry["timings"] = {
                "prepare": 0.0, "search": 0.0,
                "filter": 0.0, "core": 0.0, "dominance": 0.0,
            }
            elapsed = time.perf_counter() - start
        else:
            entry["cache"] = {
                **template.extra["engine"]["cache"], "result": "miss",
            }
            entry["timings"] = dict(entry["timings"])
            elapsed = template.elapsed
        return MACSearchResult(
            template.query,
            list(template.partitions),
            template.stats,
            elapsed,
            htk_vertices=template.htk_vertices,
            htk_edges=template.htk_edges,
            extra={"engine": entry},
            partial=template.partial,
            progress=dict(template.progress),
        )

    def _execute(
        self, request: MACRequest, deadline: Deadline | None = None
    ) -> MACSearchResult:
        """The uncached pipeline: prepare (via stage caches) + search."""
        use_gtree = self._resolve_use_gtree(request)
        backend = self._resolve_backend(request)
        anytime = request.anytime and deadline is not None
        q = MACQuery.make(
            request.query, request.k, request.t, request.region, request.j
        )
        start = time.perf_counter()
        tel_cache: dict[str, str] = {}
        times: dict[str, float] = {}
        try:
            core_state = self._prepared_core(
                request, use_gtree, backend, tel_cache, times, deadline
            )
            if core_state.core is None:
                tel_cache["dominance"] = "skipped"
                self._account_stage_times(times)
                result = MACSearchResult(
                    q, [], SearchStats(), time.perf_counter() - start
                )
                result.extra["engine"] = self._telemetry_entry(
                    request, "none", use_gtree, backend, tel_cache, times,
                    prepare_s=time.perf_counter() - start, search_s=0.0,
                )
                return result
            gd = self._dominance(
                request, core_state, backend, tel_cache, times, deadline
            )
        except DeadlineExceeded:
            if not anytime:
                raise
            # The budget died while preparing stages: there is no
            # feasible community to fall back on yet, so the anytime
            # answer is an empty partial result.
            self._account_stage_times(times)
            result = MACSearchResult(
                q, [], SearchStats(), time.perf_counter() - start,
                partial=True, progress={"stage": "prepare"},
            )
            result.extra["engine"] = self._telemetry_entry(
                request, "none", use_gtree, backend, tel_cache, times,
                prepare_s=time.perf_counter() - start, search_s=0.0,
            )
            return result
        prepare_s = time.perf_counter() - start
        algorithm, _reason = self._resolve_algorithm(
            request, core_state.core.num_vertices
        )
        if deadline is not None and not anytime:
            # Anytime requests always enter the searcher: even with an
            # expired budget it drains immediately into a best-so-far
            # (H^t_k fallback) answer instead of raising here.
            deadline.check("search")
        search_start = time.perf_counter()
        partitions, stats, partial = self._run_searcher(
            request, algorithm, core_state, gd, backend, deadline
        )
        search_s = time.perf_counter() - search_start
        times["search"] = search_s
        self._account_stage_times(times)
        progress: dict = {}
        if partial:
            progress = {
                "stage": "search",
                "tasks": stats.tasks,
                "peel_rounds": stats.peel_rounds,
                "candidates": stats.candidates,
            }
        result = MACSearchResult(
            q,
            partitions,
            stats,
            time.perf_counter() - start,
            htk_vertices=core_state.core.num_vertices,
            htk_edges=core_state.core.num_edges,
            partial=partial,
            progress=progress,
        )
        result.extra["engine"] = self._telemetry_entry(
            request, algorithm, use_gtree, backend, tel_cache, times,
            prepare_s=prepare_s, search_s=search_s,
        )
        return result

    def _telemetry_entry(
        self,
        request: MACRequest,
        algorithm: str,
        use_gtree: bool,
        backend: str,
        tel_cache: dict[str, str],
        times: dict[str, float],
        prepare_s: float,
        search_s: float,
    ) -> dict:
        timings = {"prepare": prepare_s, "search": search_s}
        # Per-stage build cost of this request (0.0 = served from cache).
        for stage in ("filter", "core", "dominance"):
            timings[stage] = times.get(stage, 0.0)
        return {
            "label": request.label,
            "algorithm": algorithm,
            "filter_strategy": "gtree" if use_gtree else "dijkstra",
            "backend": backend,
            "cache": dict(tel_cache),
            "timings": timings,
        }

    def warm(self, request: MACRequest) -> dict[str, str]:
        """Build the prepared stages for a request without searching.

        Populates the filter/core/dominance caches (the r-dominance
        graph only when the (k,t)-core is non-empty) and returns the
        per-stage hit/miss outcomes.  Useful to pre-pay index builds
        outside a latency-sensitive window — e.g. the benchmark harness
        warms each configuration so timed runs measure the search
        phase under amortized prepared state.
        """
        request = self._check(request)
        use_gtree = self._resolve_use_gtree(request)
        backend = self._resolve_backend(request)
        deadline = Deadline.of(request.deadline)
        tel: dict[str, str] = {}
        times: dict[str, float] = {}
        core_state = self._prepared_core(
            request, use_gtree, backend, tel, times, deadline
        )
        if core_state.core is not None:
            self._dominance(request, core_state, backend, tel, times, deadline)
        else:
            tel["dominance"] = "skipped"
        self._account_stage_times(times)
        return tel

    def search_batch(
        self,
        requests: Iterable[MACRequest],
        workers: int | None = None,
    ) -> list[MACSearchResult]:
        """Run independent requests concurrently, sharing the caches.

        Results come back in request order.  The hot loops (Dijkstra,
        numpy corner-score sweeps, peeling) release little enough work
        to the interpreter that a thread pool is the right executor;
        identical pipeline stages are built once and shared (waiters
        block on the in-flight build instead of duplicating it).
        """
        reqs: Sequence[MACRequest] = [self._check(r) for r in requests]
        with self._counter_lock:
            self._batches += 1
        if not reqs:
            return []
        if workers is None:
            workers = min(8, len(reqs))
        if workers <= 1 or len(reqs) == 1:
            return [self.search(r) for r in reqs]
        with ThreadPoolExecutor(
            max_workers=min(workers, len(reqs)),
            thread_name_prefix="mac-engine",
        ) as pool:
            return list(pool.map(self.search, reqs))

    def explain(self, request: MACRequest) -> QueryPlan:
        """Resolve the plan for a request without executing it.

        Touches no heavy computation: only cache lookups (``peek``, so
        hit/miss accounting is unaffected) and O(1) bookkeeping.
        """
        request = self._check(request)
        use_gtree = self._resolve_use_gtree(request)
        backend = self._resolve_backend(request)
        prep, prep_cached = self._filter_cache.peek(
            request.filter_key + (backend,)
        )
        core_state, core_cached = self._core_cache.peek(
            request.core_key + (backend,)
        )
        _gd, gd_cached = self._gd_cache.peek(
            request.dominance_key + (backend,)
        )
        if self._result_cache is not None:
            template, result_cached = self._result_cache.peek(
                request.result_key
            )
        else:
            template, result_cached = None, False
        notes: list[str] = []

        htk_vertices: int | None = None
        feasible: bool | None = None
        upper = self.network.social.num_users
        if result_cached and not core_cached:
            # The stage entries may have been evicted, but the finished
            # result still tells us the exact core size.
            feasible = template.htk_vertices > 0
            htk_vertices = template.htk_vertices
            upper = template.htk_vertices
        if core_cached:
            feasible = core_state.core is not None
            htk_vertices = (
                core_state.core.num_vertices if feasible else 0
            )
            upper = htk_vertices
        elif result_cached:
            pass  # already resolved from the cached result above
        elif prep_cached:
            upper = sum(
                1 for c in prep.coreness.values() if c >= request.k
            )
            if any(q not in prep.query_distance for q in request.query):
                feasible = False
                upper = 0
            elif request.k > prep.max_coreness:
                feasible = False
                upper = 0
        else:
            notes.append(
                "no cached state for (Q, t); bound is the full user count"
            )

        known_exact = core_cached or result_cached
        if request.algorithm != "auto" or known_exact:
            algorithm, reason = self._resolve_algorithm(
                request, htk_vertices if known_exact else None
            )
        elif prep_cached and upper <= self.auto_local_threshold:
            # The bound caps the true core size, so this prediction is
            # exact even though |H^t_k| is not materialized yet.
            algorithm = "global"
            reason = (
                f"auto: |H^t_k| <= {upper} <= {self.auto_local_threshold}"
            )
        elif prep_cached:
            algorithm = "local"
            reason = (
                f"auto (provisional): coreness bound {upper} > "
                f"{self.auto_local_threshold}"
            )
            notes.append(
                "algorithm resolution is provisional until H^t_k is "
                "materialized"
            )
        else:
            algorithm, reason = self._resolve_algorithm(request, None)
            notes.append(
                "algorithm resolution is provisional until H^t_k is "
                "materialized"
            )
        if feasible is False:
            # Mirror execution: an empty (k,t)-core runs no searcher.
            algorithm = "none"
            reason = "infeasible: the maximal (k,t)-core is empty"
            searcher = "none"
        else:
            searcher = SEARCHER_NAMES[(algorithm, request.problem)]
        if algorithm == "local":
            search_backend = backend
            frontier = f"push-{request.strategy}"
        elif algorithm == "global":
            search_backend = backend
            frontier = f"peel-{request.refinement}"
        else:
            search_backend = "none"
            frontier = "none"
        with self._counter_lock:
            stage_seconds = dict(self._stage_seconds)
        return QueryPlan(
            request=request,
            problem=request.problem,
            algorithm=algorithm,
            algorithm_reason=reason,
            searcher=searcher,
            filter_strategy="gtree" if use_gtree else "dijkstra",
            backend=backend,
            search_backend=search_backend,
            frontier=frontier,
            gtree_built=self.network.has_gtree,
            cached={
                "filter": prep_cached,
                "core": core_cached,
                "dominance": gd_cached,
                "result": result_cached,
            },
            feasible=feasible,
            htk_vertices=htk_vertices,
            htk_upper_bound=upper,
            stage_seconds=stage_seconds,
            notes=notes,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        t = self.telemetry()
        return (
            f"MACEngine({self.network!r}, searches={t.searches}, "
            f"hits={t.hits}, misses={t.misses})"
        )
