"""`MACRequest`: the typed, validated unit of work of the query engine.

A request captures everything ``mac_search`` used to take as loose
keyword arguments — the query of Problems 1/2 (Q, k, t, R, j), the
problem/algorithm selection, and the per-algorithm knobs — as a frozen
dataclass that validates eagerly at construction.  Frozen-ness matters:
requests are used as (partial) cache keys and may be shared across batch
worker threads.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field, fields
from numbers import Integral, Real

from repro.errors import QueryError
from repro.geometry.region import PreferenceRegion
from repro.kernels.backend import BACKENDS

PROBLEMS = ("nc", "topj")
ALGORITHMS = ("auto", "global", "local")
STRATEGIES = ("eq3", "eq4")
REFINEMENTS = ("arrangement", "envelope")
CERTIFICATIONS = ("fast", "chain")


def region_key(region: PreferenceRegion) -> tuple:
    """Hashable identity of a region (the engine's dominance-cache key)."""
    return (tuple(region.lows.tolist()), tuple(region.highs.tolist()))


@dataclass(frozen=True)
class MACRequest:
    """One MAC query against a prepared :class:`~repro.engine.MACEngine`.

    Required fields are the paper's query parameters; everything else
    defaults to the values the free-function API used.  ``algorithm``
    additionally accepts ``"auto"``, which lets the engine pick global
    vs local search from the size of the maximal (k,t)-core.
    """

    query: tuple[int, ...]
    k: int
    t: float
    region: PreferenceRegion
    j: int = 1
    problem: str = "nc"
    algorithm: str = "auto"
    use_gtree: bool | None = None  # None: engine default
    backend: str | None = None  # None: engine default ("auto"/"flat"/"python")
    max_partitions: int | None = None
    strategy: str = "eq3"
    max_candidates: int = 24
    refinement: str = "arrangement"
    certification: str = "fast"
    time_budget: float | None = None
    #: Wall-clock budget (seconds) for the whole request: every pipeline
    #: stage and search loop checks it, raising the typed
    #: :class:`~repro.errors.DeadlineExceeded` on expiry.  Like ``label``
    #: it cannot change the answer, so it is excluded from the request's
    #: semantic identity (``result_key``) and equality.
    deadline: float | None = field(default=None, compare=False)
    #: Anytime mode: when the ``deadline`` expires, return the best
    #: feasible community found so far (marked ``partial=True`` with
    #: progress stats) instead of raising.  Like ``deadline`` it cannot
    #: change a *completed* answer, so it is excluded from the semantic
    #: identity — and partial results are never cached, so an anytime
    #: request can never poison the result cache for an exact one.
    anytime: bool = field(default=False, compare=False)
    label: str | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        raw = tuple(self.query)
        if any(not isinstance(v, Integral) for v in raw):
            raise QueryError("query users must be integers")
        # Coerce numpy integers etc. to plain ints: canonical cache keys,
        # and the historical free-function API accepted numpy arrays.
        object.__setattr__(
            self, "query", tuple(sorted({int(v) for v in raw}))
        )
        if not self.query:
            raise QueryError("query user set Q must be non-empty")
        if not isinstance(self.k, Integral):
            raise QueryError(
                f"coreness threshold k must be an integer, got {self.k!r}"
            )
        object.__setattr__(self, "k", int(self.k))
        if self.k < 1:
            raise QueryError(
                f"coreness threshold k must be >= 1, got {self.k}"
            )
        if not isinstance(self.t, Real):
            raise QueryError(
                f"distance threshold t must be a number, got {self.t!r}"
            )
        object.__setattr__(self, "t", float(self.t))
        if self.t < 0:
            raise QueryError(
                f"distance threshold t must be >= 0, got {self.t}"
            )
        if not isinstance(self.region, PreferenceRegion):
            raise QueryError(
                f"region must be a PreferenceRegion, got "
                f"{type(self.region).__name__}"
            )
        if not isinstance(self.j, Integral):
            raise QueryError(f"j must be an integer, got {self.j!r}")
        object.__setattr__(self, "j", int(self.j))
        if self.j < 1:
            raise QueryError(f"j must be >= 1, got {self.j}")
        if self.problem not in PROBLEMS:
            raise QueryError(
                f"unknown problem {self.problem!r}; expected one of {PROBLEMS}"
            )
        if self.problem == "nc" and self.j != 1:
            raise QueryError(
                f"j={self.j} conflicts with problem 'nc' (the non-contained "
                f"MAC is rank-1 by definition); use problem='topj'"
            )
        if self.algorithm not in ALGORITHMS:
            raise QueryError(
                f"unknown algorithm {self.algorithm!r}; expected one of "
                f"{ALGORITHMS}"
            )
        if self.backend is not None and self.backend not in BACKENDS:
            raise QueryError(
                f"unknown backend {self.backend!r}; expected one of "
                f"{BACKENDS} (or None for the engine default)"
            )
        if self.strategy not in STRATEGIES:
            raise QueryError(
                f"unknown expand strategy {self.strategy!r}; expected one "
                f"of {STRATEGIES}"
            )
        if self.refinement not in REFINEMENTS:
            raise QueryError(
                f"unknown refinement {self.refinement!r}; expected one of "
                f"{REFINEMENTS}"
            )
        if self.certification not in CERTIFICATIONS:
            raise QueryError(
                f"unknown certification {self.certification!r}; expected "
                f"one of {CERTIFICATIONS}"
            )
        if self.max_candidates < 1:
            raise QueryError(
                f"max_candidates must be >= 1, got {self.max_candidates}"
            )
        if self.max_partitions is not None and self.max_partitions < 1:
            raise QueryError(
                f"max_partitions must be >= 1, got {self.max_partitions}"
            )
        if self.time_budget is not None and self.time_budget <= 0:
            raise QueryError(
                f"time_budget must be positive, got {self.time_budget}"
            )
        if self.deadline is not None:
            if not isinstance(self.deadline, Real):
                raise QueryError(
                    f"deadline must be a number of seconds, got "
                    f"{self.deadline!r}"
                )
            object.__setattr__(self, "deadline", float(self.deadline))
            if self.deadline <= 0:
                raise QueryError(
                    f"deadline must be positive, got {self.deadline}"
                )
        object.__setattr__(self, "anytime", bool(self.anytime))

    # ------------------------------------------------------------------
    @classmethod
    def make(
        cls,
        query: Iterable[int],
        k: int,
        t: float,
        region: PreferenceRegion,
        **knobs,
    ) -> MACRequest:
        """Build a request from any iterable of query users plus knobs.

        Unknown keyword arguments raise :class:`QueryError` (rather than
        ``TypeError``) so callers translating loose dicts — e.g. the CLI's
        JSONL batch reader — get a library-typed failure.
        """
        allowed = {f.name for f in fields(cls)} - {"query", "k", "t", "region"}
        unknown = sorted(set(knobs) - allowed)
        if unknown:
            raise QueryError(
                f"unknown request field(s): {', '.join(unknown)}; "
                f"allowed: {', '.join(sorted(allowed))}"
            )
        return cls(tuple(query), k, t, region, **knobs)

    # ------------------------------------------------------------------
    # cache keys for the engine's staged pipeline
    # ------------------------------------------------------------------
    @property
    def filter_key(self) -> tuple:
        """Key of the Lemma-1 range filter: (Q, t) only."""
        return (self.query, float(self.t))

    @property
    def core_key(self) -> tuple:
        """Key of the maximal (k,t)-core: (Q, k, t)."""
        return (self.query, self.k, float(self.t))

    @property
    def dominance_key(self) -> tuple:
        """Key of the r-dominance graph: (Q, k, t, R)."""
        return (self.query, self.k, float(self.t), region_key(self.region))

    @property
    def result_key(self) -> tuple:
        """Full semantic identity of the request (result-cache key).

        Everything that can influence the answer — all fields except the
        display ``label`` and the ``deadline`` budget (a request that
        beat its deadline produced the same answer any deadline allows).
        """
        return (
            self.query,
            self.k,
            float(self.t),
            region_key(self.region),
            self.j,
            self.problem,
            self.algorithm,
            self.use_gtree,
            self.backend,
            self.max_partitions,
            self.strategy,
            self.max_candidates,
            self.refinement,
            self.certification,
            self.time_budget,
        )

    def describe(self) -> str:
        """Short one-line rendering used by logs and batch output."""
        name = self.label or "request"
        return (
            f"{name}(Q={list(self.query)}, k={self.k}, t={self.t:g}, "
            f"{self.problem}"
            + (f", j={self.j}" if self.problem == "topj" else "")
            + f", {self.algorithm})"
        )
