"""The r-dominance graph Gd of Section IV: a Hasse DAG over H^t_k.

Vertices are streamed in non-increasing pivot-score order by the adapted
BBS over an R-tree of the attribute vectors; each arrival is attached
below its most specific r-dominators (transitive-reduction arcs only, as
in Fig. 4(b)).  Pivot ordering guarantees no later vertex can r-dominate
an earlier one, so the insertion order is a topological order — which the
subset passes (leaves/tops within a vertex subset) exploit for O(V + E)
sweeps.

Two construction backends share identical semantics.  ``"flat"`` (the
default) keeps every corner score in one ``(n, p)`` matrix: dominator
detection is a single vectorized comparison against the inserted prefix,
and Hasse-parent minimization is an array gather over a CSR store of
parent rows.  ``"python"`` is the per-vertex reference path (a
``corner_scores`` array per vertex, a pairwise ``dominance_case`` test
per inserted predecessor) kept for equivalence testing.

Tie handling: two vertices whose score functions coincide on all of R
would r-dominate each other under the paper's weak inequality; we orient
the arc toward the later vertex in the (deterministic) BBS order, keeping
Gd acyclic.  This is the only deliberate deviation from the paper's
definitions and is recorded in DESIGN.md.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.dominance.relation import (
    DOMINATES,
    EQUAL,
    SCORE_EPS,
    corner_scores,
    dominance_case,
)
from repro.errors import GeometryError, GraphError
from repro.geometry.halfspace import Halfspace, score_halfspace
from repro.geometry.region import PreferenceRegion
from repro.kernels.backend import BACKENDS
from repro.kernels.flatgraph import ragged_offsets
from repro.spatial.bbs import bbs_order
from repro.spatial.rtree import RTree

Vertex = int


class DominanceGraph:
    """Pairwise r-dominance relationships of a vertex set, as a Hasse DAG."""

    def __init__(
        self,
        attributes: Mapping[Vertex, np.ndarray],
        region: PreferenceRegion,
        use_rtree: bool = True,
        backend: str = "auto",
    ) -> None:
        self._init_base(attributes, region, backend)
        self._build(use_rtree)

    def _init_base(
        self,
        attributes: Mapping[Vertex, np.ndarray],
        region: PreferenceRegion,
        backend: str,
    ) -> None:
        """Validate inputs and compute corner scores (no DAG yet)."""
        if not attributes:
            raise GeometryError("dominance graph needs at least one vertex")
        if backend not in BACKENDS:
            raise GraphError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        # Unlike the graph kernels there is no small-size penalty to the
        # matrix layout, so "auto" always resolves to "flat".
        self.backend = "python" if backend == "python" else "flat"
        self.region = region
        self._corners = region.corners()
        self._ids: list[Vertex] = sorted(attributes)
        d = region.num_attributes
        self._attrs: dict[Vertex, np.ndarray] = {}
        for v in self._ids:
            x = np.asarray(attributes[v], dtype=float)
            if x.shape != (d,):
                raise GeometryError(
                    f"vertex {v} has {x.shape[0]}-d attributes, expected {d}"
                )
            self._attrs[v] = x
        n = len(self._ids)
        p = max(1, self._corners.shape[0])
        if self.backend == "flat":
            # One (n, d) stack + one affine product: every corner score
            # in a single matrix, replacing n per-vertex evaluations.
            x_all = np.asarray([self._attrs[v] for v in self._ids])
            if self._corners.shape[1] == 0:
                cs_all = np.repeat(x_all[:, :1], p, axis=1)
            else:
                tail = x_all[:, -1:]
                cs_all = tail + (x_all[:, :-1] - tail) @ self._corners.T
        else:
            cs_all = np.empty((n, p))
            for i, v in enumerate(self._ids):
                cs_all[i] = corner_scores(self._attrs[v], self._corners)
        self._cs_all = cs_all
        self._cs_row = {v: i for i, v in enumerate(self._ids)}
        self.parents: dict[Vertex, tuple[Vertex, ...]] = {}
        self.children: dict[Vertex, list[Vertex]] = {v: [] for v in self._ids}
        self.order: list[Vertex] = []
        self._pos: dict[Vertex, int] = {}
        self.roots: list[Vertex] = []
        self._layer: dict[Vertex, int] = {}
        self._halfspace_cache: dict[tuple[Vertex, Vertex], Halfspace] = {}

    @classmethod
    def from_hasse(
        cls,
        attributes: Mapping[Vertex, np.ndarray],
        region: PreferenceRegion,
        order: Sequence[Vertex],
        parents: Mapping[Vertex, Sequence[Vertex]],
        backend: str = "auto",
    ) -> DominanceGraph:
        """Rebuild a Gd from a previously computed Hasse DAG.

        The snapshot restore path: skips the BBS stream and all
        dominator detection — only the (cheap) corner-score matrix is
        recomputed and the recorded insertion order replayed.  ``order``
        must be a permutation of the attribute keys and ``parents`` must
        reference already-inserted vertices (both hold for any DAG
        produced by the normal constructor).
        """
        self = cls.__new__(cls)
        self._init_base(attributes, region, backend)
        if sorted(order) != self._ids:
            raise GraphError(
                "Hasse order is not a permutation of the attribute keys"
            )
        for v in order:
            pars = list(parents.get(v, ()))
            if any(p not in self._layer for p in pars):
                raise GraphError(
                    f"Hasse parent of {v!r} is not inserted before it "
                    f"in the order"
                )
            self._attach(v, pars)
        return self

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _cscore(self, v: Vertex) -> np.ndarray:
        """Corner-score row of ``v`` (a view into the score matrix)."""
        return self._cs_all[self._cs_row[v]]

    def _stream(self, use_rtree: bool) -> Iterable[Vertex]:
        if use_rtree and len(self._ids) > 1:
            points = np.asarray([self._attrs[v] for v in self._ids])
            rtree = RTree(points, payloads=list(self._ids))
            return (payload for payload, _score in bbs_order(rtree, self.region))
        pivot = self.region.pivot()
        if self.region.dim:
            pivot_scores = {
                v: float(
                    x[-1] + np.dot(pivot, x[:-1] - x[-1])
                ) for v, x in self._attrs.items()
            }
        else:
            pivot_scores = {v: float(x[0]) for v, x in self._attrs.items()}
        # Secondary key: corner-score sum, so that on an exact pivot tie a
        # strict r-dominator still precedes its dominatee (its corner sum
        # is strictly larger), keeping the insertion order topological.
        corner_sums = {
            v: float(self._cscore(v).sum()) for v in self._ids
        }
        return sorted(
            self._ids,
            key=lambda v: (-pivot_scores[v], -corner_sums[v], v),
        )

    def dag_dominates(self, u: Vertex, v: Vertex) -> bool:
        """DAG orientation of r-dominance: true partial order + id tie-break."""
        case = dominance_case(self._cscore(u), self._cscore(v), SCORE_EPS)
        if case == DOMINATES:
            return True
        if case == EQUAL:
            pu, pv = self._pos.get(u), self._pos.get(v)
            if pu is not None and pv is not None:
                return pu < pv
            return u < v
        return False

    def _build(self, use_rtree: bool) -> None:
        if self.backend == "flat":
            self._build_flat(use_rtree)
        else:
            self._build_python(use_rtree)

    def _attach(self, v: Vertex, parents: list[Vertex]) -> None:
        """Shared bookkeeping once a vertex's Hasse parents are known."""
        self._pos[v] = len(self.order)
        self.order.append(v)
        self.parents[v] = tuple(parents)
        for par in parents:
            self.children[par].append(v)
        if not parents:
            self.roots.append(v)
        self._layer[v] = (
            0 if not parents else 1 + max(self._layer[p] for p in parents)
        )

    def _build_flat(self, use_rtree: bool) -> None:
        """Vectorized insertion: one comparison and one gather per vertex.

        ``cs_ins`` mirrors the corner scores in insertion order;
        ``parent_flat``/``parent_ptr`` store each inserted row's Hasse
        parents as rows (an append-only CSR).  The dominators D of an
        arrival are one ``all(diff >= -eps)`` row reduction; the
        non-minimal members of D are exactly the union of the Hasse
        parents of D (every non-minimal dominator is an ancestor of a
        deeper one, and ancestors of dominators are dominators), so the
        Hasse parents fall out of one ragged gather + mask instead of a
        per-dominator set union.
        """
        n = len(self._ids)
        p = self._cs_all.shape[1]
        cs_ins = np.empty((n, p))
        parent_ptr = np.zeros(n + 1, np.int64)
        parent_flat = np.empty(max(4, n), np.int64)
        parent_len = 0
        mark = np.zeros(n, bool)
        for v in self._stream(use_rtree):
            count = len(self.order)
            cs_v = self._cscore(v)
            if count == 0:
                minimal_rows: list[int] = []
            else:
                diff = cs_ins[:count] - cs_v
                dominator_rows = np.nonzero(
                    np.all(diff >= -SCORE_EPS, axis=1)
                )[0]
                if dominator_rows.size == 0:
                    minimal_rows = []
                else:
                    offs, _counts = ragged_offsets(
                        parent_ptr, dominator_rows
                    )
                    if offs.size:
                        non_minimal = parent_flat[offs]
                        mark[non_minimal] = True
                        minimal = dominator_rows[~mark[dominator_rows]]
                        mark[non_minimal] = False
                    else:
                        minimal = dominator_rows
                    minimal_rows = minimal.tolist()
            cs_ins[count] = cs_v
            need = parent_len + len(minimal_rows)
            if need > parent_flat.shape[0]:
                parent_flat = np.resize(
                    parent_flat, max(need, 2 * parent_flat.shape[0])
                )
            for r in minimal_rows:
                parent_flat[parent_len] = r
                parent_len += 1
            parent_ptr[count + 1] = parent_len
            self._attach(v, [self.order[r] for r in minimal_rows])

    def _build_python(self, use_rtree: bool) -> None:
        """Reference path: pairwise tests against every inserted vertex."""
        for v in self._stream(use_rtree):
            cs_v = self._cscore(v)
            dominators = [
                u
                for u in self.order
                if dominance_case(self._cscore(u), cs_v, SCORE_EPS)
                in (DOMINATES, EQUAL)
            ]
            non_minimal: set[Vertex] = set()
            for dom in dominators:
                non_minimal.update(self.parents[dom])
            self._attach(
                v, [dom for dom in dominators if dom not in non_minimal]
            )

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._ids)

    def __contains__(self, v: Vertex) -> bool:
        return v in self._attrs

    def vertices(self) -> list[Vertex]:
        return list(self._ids)

    def attribute(self, v: Vertex) -> np.ndarray:
        return self._attrs[v]

    def layer(self, v: Vertex) -> int:
        """Depth of ``v`` in Gd (roots at layer 0); the l(v) of Eq. 3/4."""
        return self._layer[v]

    def max_layer(self) -> int:
        return max(self._layer.values())

    def score_at(self, v: Vertex, w: np.ndarray) -> float:
        x = self._attrs[v]
        if w.shape[0] == 0:
            return float(x[0])
        return float(x[-1] + np.dot(w, x[:-1] - x[-1]))

    def scores_at(self, w: np.ndarray, subset: Iterable[Vertex]) -> dict[Vertex, float]:
        return {v: self.score_at(v, w) for v in subset}

    def halfspace(self, u: Vertex, v: Vertex) -> Halfspace:
        """Cached half-space where ``S(u) >= S(v)`` (Section V-B caching)."""
        key = (u, v)
        h = self._halfspace_cache.get(key)
        if h is None:
            h = score_halfspace(self._attrs[u], self._attrs[v])
            self._halfspace_cache[key] = h
        return h

    # ------------------------------------------------------------------
    # subset sweeps (all O(V + E_hasse) using the topological order)
    # ------------------------------------------------------------------
    def has_descendant_in(self, subset: set[Vertex]) -> dict[Vertex, bool]:
        """For every vertex: does any strict Hasse-descendant lie in subset?"""
        flag: dict[Vertex, bool] = {}
        for v in reversed(self.order):
            flag[v] = any(
                (c in subset) or flag[c] for c in self.children[v]
            )
        return flag

    def has_ancestor_in(self, subset: set[Vertex]) -> dict[Vertex, bool]:
        """For every vertex: does any strict Hasse-ancestor lie in subset?"""
        flag: dict[Vertex, bool] = {}
        for v in self.order:
            flag[v] = any((p in subset) or flag[p] for p in self.parents[v])
        return flag

    def leaves_within(self, subset: Iterable[Vertex]) -> list[Vertex]:
        """Bottom layer of Gd[subset]: members dominating no other member.

        These are the only possible smallest-score vertices of the subset
        (lb(Ge) in Section VI-B).
        """
        s = set(subset)
        flag = self.has_descendant_in(s)
        return sorted(v for v in s if not flag[v])

    def tops_within(self, subset: Iterable[Vertex]) -> list[Vertex]:
        """Top layer of Gd[subset]: members with r-dominance count 0 inside.

        lt(Gc) in Section VI-B: every subset member is (weakly) dominated
        by some top-layer member.
        """
        s = set(subset)
        flag = self.has_ancestor_in(s)
        return sorted(v for v in s if not flag[v])

    def ancestors(self, v: Vertex) -> set[Vertex]:
        """All strict Hasse-ancestors (the r-dominators) of ``v``."""
        out: set[Vertex] = set()
        stack = list(self.parents[v])
        while stack:
            u = stack.pop()
            if u not in out:
                out.add(u)
                stack.extend(self.parents[u])
        return out

    def descendants(self, v: Vertex) -> set[Vertex]:
        """All strict Hasse-descendants (vertices ``v`` r-dominates)."""
        out: set[Vertex] = set()
        stack = list(self.children[v])
        while stack:
            u = stack.pop()
            if u not in out:
                out.add(u)
                stack.extend(self.children[u])
        return out

    def r_dominance_count(self, v: Vertex) -> int:
        """Number of vertices that r-dominate ``v`` (Section IV-B)."""
        return len(self.ancestors(v))

    def num_arcs(self) -> int:
        return sum(len(c) for c in self.children.values())

    def to_dot(self, labels: Mapping[Vertex, str] | None = None) -> str:
        """Graphviz DOT rendering of Gd (layers as ranks, like Fig. 4(b))."""
        labels = labels or {}
        lines = ["digraph Gd {", "  rankdir=TB;"]
        by_layer: dict[int, list[Vertex]] = {}
        for v in self._ids:
            by_layer.setdefault(self._layer[v], []).append(v)
        for layer in sorted(by_layer):
            names = " ".join(f'"{v}"' for v in sorted(by_layer[layer]))
            lines.append(f"  {{ rank=same; {names} }}")
        for v in self._ids:
            label = labels.get(v, str(v))
            lines.append(f'  "{v}" [label="{label}"];')
        for v, kids in self.children.items():
            for c in kids:
                lines.append(f'  "{v}" -> "{c}";')
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DominanceGraph(|V|={self.num_vertices}, arcs={self.num_arcs()},"
            f" depth={self.max_layer()})"
        )


def build_dominance_graph(
    vertices: Sequence[Vertex],
    attributes: Mapping[Vertex, np.ndarray],
    region: PreferenceRegion,
    use_rtree: bool = True,
    backend: str = "auto",
) -> DominanceGraph:
    """Convenience constructor over a vertex subset."""
    return DominanceGraph(
        {v: attributes[v] for v in vertices},
        region,
        use_rtree=use_rtree,
        backend=backend,
    )
