"""r-dominance: preference-bounded dominance tests and the Gd DAG."""

from repro.dominance.relation import (
    DOMINATED,
    DOMINATES,
    EQUAL,
    INCOMPARABLE,
    corner_scores,
    dominance_case,
    dominates_box,
    r_dominates,
)
from repro.dominance.graph import DominanceGraph

__all__ = [
    "DOMINATES",
    "DOMINATED",
    "EQUAL",
    "INCOMPARABLE",
    "corner_scores",
    "dominance_case",
    "r_dominates",
    "dominates_box",
    "DominanceGraph",
]
