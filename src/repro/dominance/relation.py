"""The r-dominance test of Section IV-A.

``S(v) >= S(v')`` is a half-space of the preference domain; against a
convex region R there are three cases (Fig. 3): the half-space covers R
(v r-dominates v'), misses R's interior (v is r-dominated), or cuts R
(r-incomparable).  Because R is convex with known polytope vertices, the
test reduces to evaluating both scores at every vertex of R — O(p·d) for
p polytope vertices.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.region import PreferenceRegion

#: Outcomes of a pairwise r-dominance test.
DOMINATES = "dominates"
DOMINATED = "dominated"
INCOMPARABLE = "incomparable"
EQUAL = "equal"

#: Score-comparison tolerance.
SCORE_EPS = 1e-9


def corner_scores(x: np.ndarray, corners: np.ndarray) -> np.ndarray:
    """Scores of attribute vector ``x`` at each region corner.

    ``corners`` has shape (p, d-1); the result has shape (p,).  Affine
    reduced-form evaluation: ``S = x_d + corners @ (x[:-1] - x_d)``.
    """
    x = np.asarray(x, dtype=float)
    if corners.shape[1] == 0:
        return np.full(corners.shape[0], float(x[0]))
    return x[-1] + corners @ (x[:-1] - x[-1])


def dominance_case(
    scores_u: np.ndarray, scores_v: np.ndarray, eps: float = SCORE_EPS
) -> str:
    """Classify u against v from their per-corner score arrays."""
    diff = scores_u - scores_v
    if np.all(np.abs(diff) <= eps):
        return EQUAL
    if np.all(diff >= -eps):
        return DOMINATES
    if np.all(diff <= eps):
        return DOMINATED
    return INCOMPARABLE


def r_dominates(
    x_u: np.ndarray,
    x_v: np.ndarray,
    region: PreferenceRegion,
    eps: float = SCORE_EPS,
) -> bool:
    """True iff u's score is ≥ v's everywhere on R (weak r-dominance)."""
    corners = region.corners()
    case = dominance_case(
        corner_scores(x_u, corners), corner_scores(x_v, corners), eps
    )
    return case in (DOMINATES, EQUAL)


def dominates_box(
    x_u: np.ndarray,
    box_upper: np.ndarray,
    region: PreferenceRegion,
    eps: float = SCORE_EPS,
) -> bool:
    """Vertex-to-MBB test: u r-dominates every point of the box.

    Weights are positive throughout R, so the box's upper-right corner
    maximizes the score over the box for every weight in R; dominating the
    corner dominates the whole box (Section IV-B, adaptation (1)).
    """
    return r_dominates(x_u, np.asarray(box_upper, dtype=float), region, eps)
