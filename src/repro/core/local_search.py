"""Algorithms 3-5: the local search framework (LS-T / LS-NC).

``Expand`` (Algorithm 4) grows candidate communities from the vicinity of
Q with a best-first frontier; the vertex priority is Eq. 3
(``f = lambda * f2 + f3``, degree-into-H plus dominance-layer) or Eq. 4
(``f = zeta * f1 + f3``, min-degree-gain plus layer).  Whenever the grown
induced subgraph is a connected k-core containing Q it is snapshotted as
a candidate.

``Verify`` (Algorithm 5) screens candidates with Corollary 2 (an outside
leaf of Gd must exist; an outside r-dominator of a member must be
recursively deletable), computes *bound* outside vertices and *anchors*
(Lemma 8), partitions R by the competitor half-spaces between the bottom
layer of Ge and the (bound-adjusted) top layer of Gc plus the anchor
comparisons (Corollary 3), and finally certifies each sub-cell by running
the exact peeling oracle at the cell's interior point.  Certification
keeps LS sound for its sampled weight while staying incomplete exactly
like the paper's local search (the Fig. 12 ratio experiment).
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable

import numpy as np

from repro.deadline import Deadline
from repro.dominance.graph import DominanceGraph
from repro.errors import QueryError
from repro.geometry.cell import Cell
from repro.geometry.partition_tree import PartitionTree
from repro.geometry.region import PreferenceRegion
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.core import k_core_containing
from repro.kernels.flatgraph import FlatGraph
from repro.kernels.search import (
    alive_degrees,
    cascade_rows,
    k_core_containing_rows,
    restrict_rows,
)
from repro.core.global_search import SearchStats
from repro.core.peeling import (
    cascade_delete,
    deletion_chain,
    restrict_to_query_component,
)
from repro.core.query import Community, PartitionEntry

#: Eq. 3 / Eq. 4 constants, as used in the paper's experiments.
ZETA = 100
LAMBDA = 10


class _UnionFind:
    """Tiny union-find for the Q-connectivity snapshot check."""

    def __init__(self) -> None:
        self.parent: dict[int, int] = {}

    def add(self, v: int) -> None:
        self.parent.setdefault(v, v)

    def find(self, v: int) -> int:
        root = v
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[v] != root:
            self.parent[v], v = root, self.parent[v]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[ra] = rb


def expand(
    htk: AdjacencyGraph,
    gd: DominanceGraph,
    query: Iterable[int],
    k: int,
    strategy: str = "eq3",
    max_candidates: int = 24,
    max_vertices: int | None = None,
    deadline: Deadline | None = None,
    flat: FlatGraph | None = None,
    anytime: bool = False,
) -> list[frozenset[int]]:
    """Algorithm 4: candidate communities around Q, smallest first.

    ``strategy`` selects the priority function: ``"eq3"`` (degree-driven,
    Eq. 3) or ``"eq4"`` (min-degree-gain-driven, Eq. 4).  The frontier is
    a push-style best-first queue (the Andersen et al. PPR-push idiom):
    adding a member *pushes* priority increments to its neighbors instead
    of recomputing scores from scratch, so good communities surface
    early.  ``flat`` selects the array-backed implementation (a
    :func:`~repro.kernels.search.search_flatgraph` view of ``htk``);
    both paths visit vertices in the identical order — neighbor pushes
    happen in sorted order, stale entries re-enter the heap with their
    original tie-break counter — so the candidate stream is
    bit-identical across backends.  With ``anytime`` set, deadline
    expiry stops the expansion and returns the candidates found so far
    instead of raising.
    """
    if strategy not in ("eq3", "eq4"):
        raise QueryError(f"unknown expand strategy {strategy!r}")
    if flat is not None:
        return _expand_flat(
            flat, gd, query, k, strategy, max_candidates,
            max_vertices, deadline, anytime,
        )
    q = sorted(set(query))
    members: set[int] = set(q)
    degree_in = {v: 0 for v in q}
    uf = _UnionFind()
    for v in q:
        uf.add(v)
    for v in q:
        for u in htk.neighbors(v):
            if u in members:
                degree_in[v] += 1
                uf.union(v, u)
    zeta = max(ZETA, gd.max_layer() + 1)

    def f3(v: int) -> int:
        return zeta - gd.layer(v)

    def priority(v: int) -> float:
        gain = sum(1 for u in htk.neighbors(v) if u in members)
        if strategy == "eq3":
            return LAMBDA * gain + f3(v)
        # Eq. 4: f1 is 1 when adding v raises the current minimum degree.
        current_min = min(degree_in[m] for m in members)
        joined_min = min(
            min(
                degree_in[m] + (1 if v in htk.neighbors(m) else 0)
                for m in members
            ),
            gain,
        )
        f1 = 1 if joined_min > current_min else 0
        return zeta * f1 + f3(v)

    counter = 0
    heap: list[tuple[float, int, int]] = []
    in_heap: set[int] = set()

    def push(v: int) -> None:
        nonlocal counter
        counter += 1
        heapq.heappush(heap, (-priority(v), counter, v))
        in_heap.add(v)

    for v in q:
        for u in sorted(htk.neighbors(v)):
            if u not in members and u not in in_heap:
                push(u)

    candidates: list[frozenset[int]] = []
    budget = max_vertices if max_vertices is not None else htk.num_vertices
    deficient = sum(1 for v in members if degree_in[v] < k)
    while heap and len(candidates) < max_candidates and len(members) <= budget:
        if deadline is not None:
            if anytime:
                if deadline.expired():
                    break
            else:
                deadline.check("local expand")
        neg_p, _count, v = heapq.heappop(heap)
        if v in members:
            continue
        current_p = -priority(v)
        if current_p < neg_p:  # stale priority: degree grew since push
            heapq.heappush(heap, (current_p, _count, v))
            continue
        members.add(v)
        uf.add(v)
        degree_in[v] = 0
        for u in sorted(htk.neighbors(v)):
            if u in members:
                if degree_in[u] == k - 1:
                    deficient -= 1
                degree_in[u] += 1
                degree_in[v] += 1
                uf.union(v, u)
            elif u not in in_heap:
                push(u)
        if degree_in[v] < k:
            deficient += 1
        if deficient == 0:
            roots = {uf.find(x) for x in q}
            if len(roots) == 1:
                candidates.append(frozenset(members))
    return candidates


def _expand_flat(
    fg: FlatGraph,
    gd: DominanceGraph,
    query: Iterable[int],
    k: int,
    strategy: str,
    max_candidates: int,
    max_vertices: int | None,
    deadline: Deadline | None,
    anytime: bool,
) -> list[frozenset[int]]:
    """Array-backed Expand over a row-sorted CSR view of H^t_k.

    The push idiom pays off here: ``gain[r]`` (member neighbors of row
    r) is maintained incrementally by one increment per pushed edge, so
    a priority read is O(1) for Eq. 3 instead of a neighbor scan —
    recomputation at pop time (the lazy-stale check) becomes an array
    lookup.  Row order equals ascending id order and the CSR rows are
    pre-sorted, so heap contents match the reference path exactly.
    """
    q = sorted(set(query))
    n = fg.n
    indptr, indices, ids = fg.indptr, fg.indices, fg.ids
    qrows = fg.rows_of(q)
    member = np.zeros(n, bool)
    member[qrows] = True
    degree_in = np.zeros(n, np.int64)
    gain = np.zeros(n, np.int64)
    uf = _UnionFind()
    for r in qrows:
        uf.add(r)
    for r in qrows:
        for u in indices[indptr[r]:indptr[r + 1]].tolist():
            if member[u]:
                degree_in[r] += 1
                uf.union(r, u)
            else:
                gain[u] += 1
    zeta = max(ZETA, gd.max_layer() + 1)
    layer = np.fromiter((gd.layer(v) for v in ids), np.int64, count=n)
    # Members as a preallocated fill buffer: ``member_buf[:size]`` is
    # the live member-row array, appended to in O(1) (rebuilding an
    # ndarray per add is quadratic in community size).
    member_buf = np.empty(n, np.int64)
    member_buf[: len(qrows)] = qrows
    size = len(qrows)
    scratch = np.zeros(n, bool)

    def priority(r: int) -> int:
        g = int(gain[r])
        if strategy == "eq3":
            return LAMBDA * g + zeta - int(layer[r])
        member_arr = member_buf[:size]
        current_min = int(degree_in[member_arr].min())
        nbr = indices[indptr[r]:indptr[r + 1]]
        mn = nbr[member[nbr]]
        scratch[mn] = True
        joined = degree_in[member_arr] + scratch[member_arr]
        scratch[mn] = False
        joined_min = min(int(joined.min()), g)
        f1 = 1 if joined_min > current_min else 0
        return zeta * f1 + zeta - int(layer[r])

    counter = 0
    heap: list[tuple[int, int, int]] = []
    in_heap = np.zeros(n, bool)

    def push(r: int) -> None:
        nonlocal counter
        counter += 1
        heapq.heappush(heap, (-priority(r), counter, r))
        in_heap[r] = True

    for r in qrows:
        for u in indices[indptr[r]:indptr[r + 1]].tolist():
            if not member[u] and not in_heap[u]:
                push(u)

    candidates: list[frozenset[int]] = []
    member_ids: set[int] = set(q)
    budget = max_vertices if max_vertices is not None else n
    deficient = sum(1 for r in qrows if degree_in[r] < k)
    while heap and len(candidates) < max_candidates and size <= budget:
        if deadline is not None:
            if anytime:
                if deadline.expired():
                    break
            else:
                deadline.check("local expand")
        neg_p, _count, r = heapq.heappop(heap)
        if member[r]:
            continue
        current_p = -priority(r)
        if current_p < neg_p:  # stale priority: degree grew since push
            heapq.heappush(heap, (current_p, _count, r))
            continue
        member[r] = True
        uf.add(r)
        member_buf[size] = r
        member_ids.add(ids[r])
        size += 1
        for u in indices[indptr[r]:indptr[r + 1]].tolist():
            if member[u]:
                if degree_in[u] == k - 1:
                    deficient -= 1
                degree_in[u] += 1
                degree_in[r] += 1
                uf.union(r, u)
            else:
                gain[u] += 1
                if not in_heap[u]:
                    push(u)
        if degree_in[r] < k:
            deficient += 1
        if deficient == 0:
            roots = {uf.find(x) for x in qrows}
            if len(roots) == 1:
                candidates.append(frozenset(member_ids))
    return candidates


class LocalSearch:
    """Algorithms 3-5 over a prepared H^t_k and its r-dominance graph."""

    def __init__(
        self,
        htk: AdjacencyGraph,
        gd: DominanceGraph,
        query: Iterable[int],
        k: int,
        region: PreferenceRegion,
        strategy: str = "eq3",
        max_candidates: int = 24,
        certification: str = "fast",
        deadline: Deadline | None = None,
        flat: FlatGraph | None = None,
        anytime: bool = False,
    ) -> None:
        if certification not in ("fast", "chain"):
            raise QueryError(f"unknown certification {certification!r}")
        self.htk = htk
        self.gd = gd
        self.query = tuple(sorted(set(query)))
        self.query_set = set(self.query)
        self.k = k
        self.region = region
        self.strategy = strategy
        self.max_candidates = max_candidates
        #: "fast" checks only the candidate's own subgraph at the cell's
        #: interior point (the paper's Verify); "chain" re-runs the exact
        #: full-graph peeling oracle there (sound per sample, used by the
        #: validation tests).
        self.certification = certification
        #: Optional request-wide budget; exceeded => DeadlineExceeded.
        #: Checked per expand step, per threshold probe, and per
        #: candidate verification.
        self.deadline = deadline
        #: Optional CSR view of ``htk`` (same vertex set) — the "flat"
        #: search backend: expand, the k-ĉore probes, and the peeling
        #: certifications run over int row arrays with batch degree
        #: updates instead of dict subgraph copies.
        self.flat = flat
        self._qrows: list[int] = [] if flat is None else flat.rows_of(
            tuple(sorted(set(query)))
        )
        #: Anytime mode: deadline expiry stops the search and returns
        #: the certified entries found so far (``partial`` set) instead
        #: of raising.
        self.anytime = anytime
        self.partial = False
        self.stats = SearchStats()
        self._all = frozenset(htk.vertices())
        self._bound_memo: dict[tuple[int, frozenset[int]], bool] = {}

    def _checkpoint(self, stage: str) -> bool:
        """Deadline gate: True means "stop here" (anytime expiry).

        Without anytime this raises :class:`DeadlineExceeded` exactly
        like the direct ``deadline.check`` calls it replaces.
        """
        if self.deadline is None:
            return False
        if self.anytime:
            if self.deadline.expired():
                self.partial = True
                return True
            return False
        self.deadline.check(stage)
        return False

    def _kcore_members(self, vertices) -> frozenset[int] | None:
        """Members of the connected k-ĉore of H^t_k[vertices] around Q.

        The one k-core probe every Verify helper reduces to; the flat
        path peels a row mask in place of building a dict subgraph.
        ``None`` when no such core exists (including Q ⊄ vertices).
        """
        if self.flat is not None:
            fg = self.flat
            mask = np.zeros(fg.n, bool)
            mask[fg.rows_of(vertices)] = True
            comp = k_core_containing_rows(fg, mask, self._qrows, self.k)
            if comp is None:
                return None
            return frozenset(fg.select_ids(comp))
        core = k_core_containing(
            self.htk.subgraph(vertices), self.query, self.k
        )
        if core is None:
            return None
        return frozenset(core.vertices())

    # ------------------------------------------------------------------
    # Corollary 2 / Lemma 8 machinery
    # ------------------------------------------------------------------
    def _survives_alone(self, v: int, members: frozenset[int]) -> bool:
        """Does v survive in the k-ĉore of H^t_k[VH ∪ {v}] containing Q?

        If it does, v can never be deleted (it is not score-deletable while
        it r-dominates a member, and it is structurally safe even when all
        other outside vertices are gone) — Corollary 2(2).  If it does not,
        v is *bound*: it dies by cascade regardless of its score.
        """
        key = (v, members)
        memo = self._bound_memo.get(key)
        if memo is not None:
            return memo
        core = self._kcore_members(members | {v})
        survives = core is not None and v in core
        self._bound_memo[key] = survives
        return survives

    def _effective_tops(
        self, outside: set[int], members: frozenset[int]
    ) -> tuple[list[int], set[int]] | None:
        """Top layer of Gc after discarding bound vertices (Corollary 3(2)).

        Returns ``(tops, bound)`` — the constraint-carrying top vertices
        and the set discarded as bound — or None when Corollary 2(2)
        rejects the candidate: an outside r-dominator of a member can
        never be deleted (it is not score-deletable while its dominee
        remains in H, and it survives structurally even with every other
        outside vertex gone).
        """
        dominates_member = self.gd.has_descendant_in(set(members))
        for v in outside:
            if dominates_member[v] and self._survives_alone(v, members):
                return None
        pool = set(outside)
        bound_all: set[int] = set()
        while True:
            tops = self.gd.tops_within(pool)
            bound = [t for t in tops if not self._survives_alone(t, members)]
            safe = [t for t in tops if t not in bound]
            if not bound:
                return safe, bound_all
            bound_all.update(bound)
            pool -= set(bound)
            if not pool:
                return [], bound_all

    def _has_mutual_support(
        self, members: frozenset[int], bound: set[int]
    ) -> bool:
        """Corollary 3(3) situation: bound vertices that keep each other
        alive (e.g. the paper's v4/v5 against H1).

        Each bound vertex dies once *all* other outside vertices are gone,
        but a cluster of them may survive collectively — then one cluster
        member must be score-deleted first, a disjunctive condition the
        convex clip cell cannot express.  Such candidates are certified
        with the exact chain oracle instead.
        """
        if not bound:
            return False
        core = self._kcore_members(members | bound)
        return core is not None and any(v in core for v in bound)

    def _anchors(
        self, members: frozenset[int], leaves: list[int]
    ) -> list[int]:
        """Lemma 8: non-Q leaves of Ge whose removal keeps a k-ĉore ⊇ Q."""
        anchors = []
        for v in leaves:
            if v in self.query_set:
                continue
            if self._kcore_members(members - {v}) is not None:
                anchors.append(v)
        return anchors

    # ------------------------------------------------------------------
    def _certify_chain(self, cell: Cell, members: frozenset[int]) -> bool:
        """Exact full-graph chain at the cell's interior point."""
        w = cell.interior_point()
        scores = {v: self.gd.score_at(v, w) for v in self._all}
        chain, _batches = deletion_chain(
            self.htk, self.query, self.k, scores, flat=self.flat
        )
        return frozenset(chain[-1]) == members

    def _certify_fast(
        self, cell: Cell, members: frozenset[int], ge_leaves: list[int]
    ) -> bool:
        """Local non-containment check at the cell's interior point.

        Reachability of H (all of Gc deleted first) is vouched for by the
        Corollary-3 half-spaces already clipped into the cell; what
        remains is Definition 6: deleting H's smallest-score member must
        destroy the k-ĉore around Q.  The minimum of H is attained at a
        bottom-layer vertex of Ge, so only those are inspected, and the
        cascade runs on H's own subgraph only.
        """
        w = cell.interior_point()
        u = min(
            ge_leaves, key=lambda v: (self.gd.score_at(v, w), v)
        )
        if u in self.query_set:
            return True  # Corollary 1(1)
        if self.flat is not None:
            fg = self.flat
            mask = np.zeros(fg.n, bool)
            mask[fg.rows_of(members)] = True
            deg = alive_degrees(fg, mask)
            removed = cascade_rows(fg, deg, mask, fg.row_of(u), self.k)
            ids = fg.ids
            if {ids[i] for i in removed.tolist()} & self.query_set:
                return True  # Corollary 1(2)
            return restrict_rows(fg, mask, self._qrows) is None
        sub = self.htk.subgraph(members)
        deleted = cascade_delete(sub, u, self.k)
        if deleted & self.query_set:
            return True  # Corollary 1(2)
        return restrict_to_query_component(sub, self.query) is None

    def _certify(
        self, cell: Cell, members: frozenset[int], ge_leaves: list[int]
    ) -> bool:
        if self.certification == "chain":
            return self._certify_chain(cell, members)
        return self._certify_fast(cell, members, ge_leaves)

    def _verify_candidate(
        self, members: frozenset[int]
    ) -> list[tuple[Cell, frozenset[int]]]:
        """Algorithm 5 for one candidate: certified (cell, members)."""
        outside = set(self._all - members)
        root = Cell.from_region(self.region)
        mutual_support = False
        if outside:
            # Corollary 2(1): deletion must start at an outside leaf of Gd.
            all_leaves = set(self.gd.leaves_within(self._all))
            if not (all_leaves & outside):
                return []
            analyzed = self._effective_tops(outside, members)
            if analyzed is None:
                return []
            tops, bound = analyzed
            mutual_support = self._has_mutual_support(members, bound)
        else:
            tops = []  # candidate is H^t_k itself: only anchors matter
        ge_leaves = self.gd.leaves_within(members)
        anchors = self._anchors(members, ge_leaves)
        # Corollary 3: H is valid where every bottom-layer member of Ge
        # scores above every (bound-adjusted) top of Gc, and no anchor is
        # the community minimum.  Each condition is one half-space, so the
        # validity region is a single convex cell — clip instead of
        # building an arrangement.
        cell = root
        non_anchor_leaves = [u for u in ge_leaves if u not in anchors]
        for u in ge_leaves:
            for a in tops:
                cell = cell.with_constraint(self.gd.halfspace(u, a))
                self.stats.halfspaces_inserted += 1
                if cell.is_empty():
                    return []
        for a in anchors:
            for u in non_anchor_leaves:
                cell = cell.with_constraint(self.gd.halfspace(a, u))
                self.stats.halfspaces_inserted += 1
                if cell.is_empty():
                    return []
        if mutual_support:
            # Disjunctive reachability (Corollary 3(3)): the fast local
            # check cannot see which cluster member breaks first — use
            # the exact oracle for this (rare) shape.
            certified = self._certify_chain(cell, members)
        else:
            certified = self._certify(cell, members, ge_leaves)
        if certified:
            return [(cell, members)]
        return []

    # ------------------------------------------------------------------
    def _threshold_candidates(
        self, per_probe: int = 6, step: int = 2
    ) -> list[frozenset[int]]:
        """Candidates from score-threshold prefixes at R's pivot/corners.

        At a fixed weight w the MAC chain consists of the communities
        ``k-ĉore_Q({v : S(v) >= θ})`` for decreasing thresholds θ (every
        score-peeled vertex is gone once the global minimum passes its
        score).  Sorting the vertices by score once and taking k-ĉores of
        growing prefixes therefore reproduces the chain *bottom-up*,
        without peeling — each probe costs O((n/step) · m) worst case but
        stops after ``per_probe`` candidates, keeping the search local.
        """
        probes = [self.region.pivot()]
        probes.extend(self.region.corners())
        out: list[frozenset[int]] = []
        seen_rankings: set[tuple[int, ...]] = set()
        for w in probes:
            if self._checkpoint("local threshold probing"):
                return out
            ranked = sorted(
                self._all,
                key=lambda v: (-self.gd.score_at(v, w), v),
            )
            signature = tuple(ranked)
            if signature in seen_rankings:
                continue  # small regions often rank identically everywhere
            seen_rankings.add(signature)

            def core_of(size: int):
                return self._kcore_members(ranked[:size])

            # Existence of the prefix k-ĉore is monotone in the prefix
            # size: binary-search the smallest feasible prefix, then walk
            # upward collecting the chain communities bottom-up.
            lo, hi = self.k + 1, len(ranked)
            if core_of(hi) is None:
                continue
            while lo < hi:
                mid = (lo + hi) // 2
                if core_of(mid) is None:
                    lo = mid + 1
                else:
                    hi = mid
            found = 0
            previous: frozenset[int] | None = None
            for size in range(lo, len(ranked) + step, step):
                if self._checkpoint("local threshold probing"):
                    return out
                fs = core_of(min(size, len(ranked)))
                if fs is None:
                    continue
                if fs != previous:
                    previous = fs
                    if fs not in out:
                        out.append(fs)
                    found += 1
                    if found >= per_probe:
                        break
        return out

    def search_nc(self) -> list[PartitionEntry]:
        """Problem 2 via local search: non-contained MACs with partitions."""
        candidates = expand(
            self.htk,
            self.gd,
            self.query,
            self.k,
            strategy=self.strategy,
            max_candidates=self.max_candidates,
            deadline=self.deadline,
            flat=self.flat,
            anytime=self.anytime,
        )
        for extra in self._threshold_candidates():
            if extra not in candidates:
                candidates.append(extra)
        if self._all not in candidates:
            candidates.append(self._all)
        self.stats.candidates = len(candidates)
        entries: list[PartitionEntry] = []
        claimed: list[frozenset[int]] = []
        for members in candidates:
            if members in claimed:
                continue
            if self._checkpoint("local verify"):
                break
            claimed.append(members)
            for cell, found in self._verify_candidate(members):
                entries.append(PartitionEntry(cell, [Community(found)]))
        if self.partial and not entries:
            # Anytime fallback: H^t_k itself is a feasible community
            # for all of R (a connected k-core containing Q), just not
            # certified non-contained — return it as the best-so-far.
            entries.append(
                PartitionEntry(
                    Cell.from_region(self.region),
                    [Community(self._all, partial=True)],
                )
            )
        self.stats.partitions = len(entries)
        return entries

    def search_topj(self, j: int) -> list[PartitionEntry]:
        """Problem 1 via local search.

        For each certified cell the top-j chain is reconstructed by
        re-running the bounded oracle at the cell's interior point after
        refining the cell by the half-spaces among the outside top layers
        (the "up-bottom" generalization at the end of Section VI-B); the
        work grows with j through the extra refinement levels.
        """
        if j < 1:
            raise QueryError(f"j must be >= 1, got {j}")
        base = self.search_nc()
        entries: list[PartitionEntry] = []
        for entry in base:
            if self.partial and entry.best.partial:
                # Anytime fallback entry: its chain was never peeled;
                # pass it through rather than paying for a full oracle
                # run after the budget is already gone.
                entries.append(entry)
                continue
            members = entry.best.members
            outside = set(self._all - members)
            refine: list = []
            # Peel up to j-1 dominance layers off Gc, collecting pairwise
            # half-spaces per layer (score order inside a layer decides
            # which vertex returns first).
            pool = set(outside)
            for _level in range(j - 1):
                if not pool:
                    break
                tops = self.gd.tops_within(pool)
                for i, u in enumerate(tops):
                    for v in tops[i + 1 :]:
                        refine.append(self.gd.halfspace(u, v))
                pool -= set(tops)
            tree = PartitionTree(entry.cell)
            for h in refine:
                tree.insert(h)
                self.stats.halfspaces_inserted += 1
            for cell in tree.leaves():
                if self._checkpoint("local top-j refinement"):
                    # Anytime: the certified NC community still stands
                    # for this cell; report it as the chain's (partial)
                    # best instead of dropping the cell.
                    entries.append(
                        PartitionEntry(
                            cell, [Community(members, partial=True)]
                        )
                    )
                    continue
                w = cell.interior_point()
                scores = {v: self.gd.score_at(v, w) for v in self._all}
                chain, _batches = deletion_chain(
                    self.htk, self.query, self.k, scores,
                    max_batches=j - 1, flat=self.flat,
                )
                communities = [
                    Community(c) for c in reversed(chain[-j:])
                ]
                entries.append(PartitionEntry(cell, communities))
        self.stats.partitions = len(entries)
        return entries
