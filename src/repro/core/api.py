"""Public entry points for MAC search on road-social networks.

``mac_search`` runs the full pipeline of the paper: range filter
(Lemma 1, optionally G-tree accelerated), maximal (k,t)-core (Lemma 3),
r-dominance graph construction (Section IV), then global (Algorithm 1) or
local (Algorithms 3-5) search for Problem 1 (top-j) or Problem 2
(non-contained).  The four named algorithms of Section VII are the
convenience wrappers ``gs_topj`` (GS-T), ``gs_nc`` (GS-NC), ``ls_topj``
(LS-T) and ``ls_nc`` (LS-NC).
"""

from __future__ import annotations

import time
from collections.abc import Iterable
from dataclasses import dataclass, field

import numpy as np

from repro.dominance.graph import DominanceGraph
from repro.errors import QueryError
from repro.geometry.region import PreferenceRegion
from repro.core.global_search import GlobalSearch, SearchStats
from repro.core.local_search import LocalSearch
from repro.core.query import Community, MACQuery, PartitionEntry
from repro.social.roadsocial import RoadSocialNetwork


@dataclass
class MACSearchResult:
    """Outcome of a MAC search: partitions of R with their communities."""

    query: MACQuery
    partitions: list[PartitionEntry]
    stats: SearchStats
    elapsed: float
    htk_vertices: int = 0
    htk_edges: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def is_empty(self) -> bool:
        return not self.partitions

    def communities(self) -> set[Community]:
        """All distinct communities across every partition and rank."""
        out: set[Community] = set()
        for entry in self.partitions:
            out.update(entry.communities)
        return out

    def nc_communities(self) -> set[Community]:
        """Distinct rank-1 (non-contained / best) communities."""
        return {entry.best for entry in self.partitions if entry.communities}

    def entry_at(self, w_reduced: np.ndarray) -> PartitionEntry | None:
        """The partition whose cell contains the weight ``w_reduced``."""
        w = np.asarray(w_reduced, dtype=float)
        for entry in self.partitions:
            if entry.cell.contains(w):
                return entry
        return None

    def summary(self, max_rows: int = 10) -> str:
        """Human-readable digest of the result (one line per partition)."""
        if self.is_empty:
            return (
                f"MAC search {self.query.query}: no maximal (k,t)-core — "
                f"no communities ({self.elapsed:.3f}s)"
            )
        lines = [
            f"MAC search Q={self.query.query} k={self.query.k} "
            f"t={self.query.t:g}: {len(self.partitions)} partition(s), "
            f"{len(self.communities())} distinct MAC(s), "
            f"|H^t_k|={self.htk_vertices}, {self.elapsed:.3f}s"
        ]
        for i, entry in enumerate(self.partitions[:max_rows]):
            w = entry.sample_weight()
            sizes = "/".join(str(len(c)) for c in entry.communities)
            lines.append(
                f"  [{i}] w≈{np.round(w, 3).tolist()} sizes {sizes}"
            )
        if len(self.partitions) > max_rows:
            lines.append(f"  ... {len(self.partitions) - max_rows} more")
        return "\n".join(lines)


def _prepare(
    network: RoadSocialNetwork,
    query: Iterable[int],
    k: int,
    t: float,
    region: PreferenceRegion,
    use_gtree: bool,
):
    """Shared pipeline: H^t_k then Gd (returns None when H^t_k is empty)."""
    if region.num_attributes != network.social.dimensionality:
        raise QueryError(
            f"region is for d={region.num_attributes} attributes but the "
            f"network has d={network.social.dimensionality}"
        )
    ktcore = network.maximal_kt_core(query, k, t, use_gtree=use_gtree)
    if ktcore is None:
        return None
    attrs = network.social.attributes_for(ktcore.graph.vertices())
    gd = DominanceGraph(attrs, region)
    return ktcore, gd


def mac_search(
    network: RoadSocialNetwork,
    query: Iterable[int],
    k: int,
    t: float,
    region: PreferenceRegion,
    j: int = 1,
    algorithm: str = "global",
    problem: str = "nc",
    use_gtree: bool = False,
    max_partitions: int | None = None,
    strategy: str = "eq3",
    max_candidates: int = 24,
    refinement: str = "arrangement",
    certification: str = "fast",
    time_budget: float | None = None,
) -> MACSearchResult:
    """Run a MAC search end to end.

    Parameters
    ----------
    network:
        The road-social network.
    query, k, t, region, j:
        The query of Problems 1/2 (Section II-D).
    algorithm:
        ``"global"`` (Algorithm 1) or ``"local"`` (Algorithms 3-5).
    problem:
        ``"nc"`` (Problem 2, non-contained MACs) or ``"topj"`` (Problem 1).
    use_gtree:
        Accelerate the Lemma-1 range filter with a (cached) G-tree.
    max_partitions:
        Safety budget for the global search's output size.
    strategy, max_candidates:
        Local-search knobs (Eq. 3 vs Eq. 4 priority; Expand snapshots).
    refinement:
        Global-search partitioning: ``"arrangement"`` (the paper's
        Algorithm 1 — all pairwise leaf half-spaces) or ``"envelope"``
        (lower-envelope ablation: refine only against the current
        minimum; same non-contained MACs, far fewer partitions).
    """
    if algorithm not in ("global", "local"):
        raise QueryError(f"unknown algorithm {algorithm!r}")
    if problem not in ("nc", "topj"):
        raise QueryError(f"unknown problem {problem!r}")
    q = MACQuery.make(query, k, t, region, j)
    start = time.perf_counter()
    prepared = _prepare(network, q.query, k, t, region, use_gtree)
    if prepared is None:
        return MACSearchResult(
            q, [], SearchStats(), time.perf_counter() - start
        )
    ktcore, gd = prepared
    if algorithm == "global":
        searcher = GlobalSearch(
            ktcore.graph, gd, q.query, k, region,
            max_partitions=max_partitions, refinement=refinement,
            time_budget=time_budget,
        )
        partitions = (
            searcher.search_nc() if problem == "nc" else searcher.search_topj(j)
        )
        stats = searcher.stats
    else:
        searcher = LocalSearch(
            ktcore.graph,
            gd,
            q.query,
            k,
            region,
            strategy=strategy,
            max_candidates=max_candidates,
            certification=certification,
        )
        partitions = (
            searcher.search_nc() if problem == "nc" else searcher.search_topj(j)
        )
        stats = searcher.stats
    return MACSearchResult(
        q,
        partitions,
        stats,
        time.perf_counter() - start,
        htk_vertices=ktcore.num_vertices,
        htk_edges=ktcore.num_edges,
    )


def gs_topj(network, query, k, t, region, j, **kwargs) -> MACSearchResult:
    """GS-T: global search for the top-j MACs (Problem 1)."""
    return mac_search(
        network, query, k, t, region, j=j,
        algorithm="global", problem="topj", **kwargs,
    )


def gs_nc(network, query, k, t, region, **kwargs) -> MACSearchResult:
    """GS-NC: global search for the non-contained MACs (Problem 2)."""
    return mac_search(
        network, query, k, t, region,
        algorithm="global", problem="nc", **kwargs,
    )


def ls_topj(network, query, k, t, region, j, **kwargs) -> MACSearchResult:
    """LS-T: local search for the top-j MACs (Problem 1)."""
    return mac_search(
        network, query, k, t, region, j=j,
        algorithm="local", problem="topj", **kwargs,
    )


def ls_nc(network, query, k, t, region, **kwargs) -> MACSearchResult:
    """LS-NC: local search for the non-contained MACs (Problem 2)."""
    return mac_search(
        network, query, k, t, region,
        algorithm="local", problem="nc", **kwargs,
    )
