"""Free-function entry points for MAC search (thin engine wrappers).

The primary API of this package is the stateful
:class:`repro.engine.MACEngine`: construct it once per network, submit
typed :class:`repro.engine.MACRequest` objects through ``search`` /
``search_batch``, and the engine reuses the expensive pipeline stages
(G-tree, Lemma-1 range filters, coreness arrays, (k,t)-cores,
r-dominance graphs) across queries.  See ``ENGINE.md`` for the guide
and the migration table.

The functions here are the original one-shot convenience API, kept
working as thin wrappers that delegate to a per-call engine:
``mac_search`` runs the full pipeline of the paper — range filter
(Lemma 1, optionally G-tree accelerated), maximal (k,t)-core (Lemma 3),
r-dominance graph construction (Section IV), then global (Algorithm 1)
or local (Algorithms 3-5) search for Problem 1 (top-j) or Problem 2
(non-contained).  The four named algorithms of Section VII are the
convenience wrappers ``gs_topj`` (GS-T), ``gs_nc`` (GS-NC), ``ls_topj``
(LS-T) and ``ls_nc`` (LS-NC).  Each call rebuilds all prepared state
except the G-tree, which lives on the network
(:attr:`RoadSocialNetwork.gtree`) and is shared with any engine; for
repeated-query workloads, hold an engine instead.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

import numpy as np

from repro.errors import QueryError
from repro.geometry.region import PreferenceRegion
from repro.core.global_search import SearchStats
from repro.core.query import Community, MACQuery, PartitionEntry
from repro.social.roadsocial import RoadSocialNetwork


@dataclass
class MACSearchResult:
    """Outcome of a MAC search: partitions of R with their communities.

    ``partial`` marks an anytime answer: the deadline expired and the
    result holds the best feasible communities found so far instead of
    the complete, certified set (see ``MACRequest.anytime``).
    ``progress`` then records how far the search got (tasks done, peel
    rounds, candidates seen); it is empty for exact results.
    """

    query: MACQuery
    partitions: list[PartitionEntry]
    stats: SearchStats
    elapsed: float
    htk_vertices: int = 0
    htk_edges: int = 0
    extra: dict = field(default_factory=dict)
    partial: bool = False
    progress: dict = field(default_factory=dict)

    @property
    def is_empty(self) -> bool:
        return not self.partitions

    def communities(self) -> set[Community]:
        """All distinct communities across every partition and rank."""
        out: set[Community] = set()
        for entry in self.partitions:
            out.update(entry.communities)
        return out

    def nc_communities(self) -> set[Community]:
        """Distinct rank-1 (non-contained / best) communities."""
        return {entry.best for entry in self.partitions if entry.communities}

    def entry_at(self, w_reduced: np.ndarray) -> PartitionEntry | None:
        """The partition whose cell contains the weight ``w_reduced``."""
        w = np.asarray(w_reduced, dtype=float)
        for entry in self.partitions:
            if entry.cell.contains(w):
                return entry
        return None

    def summary(self, max_rows: int = 10) -> str:
        """Human-readable digest of the result (one line per partition)."""
        mark = " [partial]" if self.partial else ""
        if self.is_empty:
            return (
                f"MAC search {self.query.query}: no maximal (k,t)-core — "
                f"no communities{mark} ({self.elapsed:.3f}s)"
            )
        lines = [
            f"MAC search Q={self.query.query} k={self.query.k} "
            f"t={self.query.t:g}: {len(self.partitions)} partition(s), "
            f"{len(self.communities())} distinct MAC(s), "
            f"|H^t_k|={self.htk_vertices}, {self.elapsed:.3f}s{mark}"
        ]
        for i, entry in enumerate(self.partitions[:max_rows]):
            w = entry.sample_weight()
            sizes = "/".join(str(len(c)) for c in entry.communities)
            lines.append(
                f"  [{i}] w≈{np.round(w, 3).tolist()} sizes {sizes}"
            )
        if len(self.partitions) > max_rows:
            lines.append(f"  ... {len(self.partitions) - max_rows} more")
        return "\n".join(lines)


def mac_search(
    network: RoadSocialNetwork,
    query: Iterable[int],
    k: int,
    t: float,
    region: PreferenceRegion,
    j: int = 1,
    algorithm: str = "global",
    problem: str = "nc",
    use_gtree: bool = False,
    max_partitions: int | None = None,
    strategy: str = "eq3",
    max_candidates: int = 24,
    refinement: str = "arrangement",
    certification: str = "fast",
    time_budget: float | None = None,
    backend: str | None = None,
    deadline: float | None = None,
    anytime: bool = False,
) -> MACSearchResult:
    """Run one MAC search end to end (one-shot engine delegation).

    Parameters
    ----------
    network:
        The road-social network.
    query, k, t, region, j:
        The query of Problems 1/2 (Section II-D).  ``j`` only applies to
        ``problem="topj"`` and is ignored for ``"nc"``.
    algorithm:
        ``"global"`` (Algorithm 1), ``"local"`` (Algorithms 3-5), or
        ``"auto"`` (pick by the size of the maximal (k,t)-core).
    problem:
        ``"nc"`` (Problem 2, non-contained MACs) or ``"topj"`` (Problem 1).
    use_gtree:
        Accelerate the Lemma-1 range filter with the network's shared
        G-tree (built on first use, reused forever).
    max_partitions:
        Safety budget for the global search's output size.
    strategy, max_candidates:
        Local-search knobs (Eq. 3 vs Eq. 4 priority; Expand snapshots).
    refinement:
        Global-search partitioning: ``"arrangement"`` (the paper's
        Algorithm 1 — all pairwise leaf half-spaces) or ``"envelope"``
        (lower-envelope ablation: refine only against the current
        minimum; same non-contained MACs, far fewer partitions).
    backend:
        ``"flat"`` / ``"python"`` / ``"auto"`` compute backend (None:
        engine default) — covers the search loops too.
    deadline, anytime:
        Wall-clock budget in seconds; with ``anytime=True`` expiry
        returns the best-so-far feasible community (``partial=True``)
        instead of raising :class:`~repro.errors.DeadlineExceeded`.
    """
    from repro.engine import MACEngine, MACRequest

    if j < 1:
        # Validate before the nc-path normalization below masks a bad j.
        raise QueryError(f"j must be >= 1, got {j}")
    request = MACRequest.make(
        query, k, t, region,
        j=j if problem == "topj" else 1,
        algorithm=algorithm,
        problem=problem,
        use_gtree=use_gtree,
        max_partitions=max_partitions,
        strategy=strategy,
        max_candidates=max_candidates,
        refinement=refinement,
        certification=certification,
        time_budget=time_budget,
        backend=backend,
        deadline=deadline,
        anytime=anytime,
    )
    return MACEngine(network).search(request)


#: Optional keyword arguments the ``gs_*`` / ``ls_*`` wrappers may
#: forward to :func:`mac_search`.  ``algorithm`` and ``problem`` are
#: fixed by the wrapper's identity, and ``j`` is positional-only on the
#: top-j wrappers / meaningless on the non-contained ones.
_WRAPPER_KWARGS = frozenset(
    {
        "use_gtree",
        "max_partitions",
        "strategy",
        "max_candidates",
        "refinement",
        "certification",
        "time_budget",
        "backend",
        "deadline",
        "anytime",
    }
)


def _check_wrapper_kwargs(name: str, kwargs: dict) -> None:
    """Reject conflicting/unknown kwargs instead of silently passing them.

    The wrappers historically accepted ``**kwargs`` verbatim, so e.g.
    ``gs_nc(..., j=5)`` silently ran a different query than the caller
    intended (``j`` is meaningless for Problem 2) and
    ``ls_nc(..., algorithm="global")`` would have crashed with a
    confusing ``TypeError`` about duplicate keywords.
    """
    conflicting = sorted(
        k for k in kwargs if k in ("algorithm", "problem", "j")
    )
    if conflicting:
        raise QueryError(
            f"{name}() fixes {', '.join(conflicting)}; pass them to "
            f"mac_search() instead"
        )
    unknown = sorted(set(kwargs) - _WRAPPER_KWARGS)
    if unknown:
        raise QueryError(
            f"{name}() got unknown keyword(s): {', '.join(unknown)}; "
            f"allowed: {', '.join(sorted(_WRAPPER_KWARGS))}"
        )


def gs_topj(network, query, k, t, region, j, **kwargs) -> MACSearchResult:
    """GS-T: global search for the top-j MACs (Problem 1)."""
    _check_wrapper_kwargs("gs_topj", kwargs)
    return mac_search(
        network, query, k, t, region, j=j,
        algorithm="global", problem="topj", **kwargs,
    )


def gs_nc(network, query, k, t, region, **kwargs) -> MACSearchResult:
    """GS-NC: global search for the non-contained MACs (Problem 2)."""
    _check_wrapper_kwargs("gs_nc", kwargs)
    return mac_search(
        network, query, k, t, region,
        algorithm="global", problem="nc", **kwargs,
    )


def ls_topj(network, query, k, t, region, j, **kwargs) -> MACSearchResult:
    """LS-T: local search for the top-j MACs (Problem 1)."""
    _check_wrapper_kwargs("ls_topj", kwargs)
    return mac_search(
        network, query, k, t, region, j=j,
        algorithm="local", problem="topj", **kwargs,
    )


def ls_nc(network, query, k, t, region, **kwargs) -> MACSearchResult:
    """LS-NC: local search for the non-contained MACs (Problem 2)."""
    _check_wrapper_kwargs("ls_nc", kwargs)
    return mac_search(
        network, query, k, t, region,
        algorithm="local", problem="nc", **kwargs,
    )
