"""k-truss MACs: the Section II-B "Remarks" extension.

The paper notes that its techniques apply to cohesiveness metrics beyond
the k-core, naming the k-truss.  This module provides the truss-cohesive
variants: the maximal (k,t)-truss, the truss peeling cascade, the exact
point oracle, and a truss-backed global search (the r-dominance geometry
is untouched — only the structural cascade changes).

Truss cascades are implemented by full re-peeling after each deletion
(simple and correct; truss maintenance is far more intricate than core
maintenance and these variants target analysis-scale graphs).
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Mapping

from repro.dominance.graph import DominanceGraph
from repro.errors import QueryError
from repro.geometry.region import PreferenceRegion
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.truss import k_truss, k_truss_containing
from repro.core.global_search import GlobalSearch
from repro.core.peeling import Removal, restore_removed


def truss_cascade_recoverable(
    graph: AdjacencyGraph, trigger: int, k: int
) -> Removal:
    """Delete ``trigger`` and shrink back to the maximal k-truss.

    Mutates ``graph``; returns an undo log compatible with
    :func:`repro.core.peeling.restore_removed`.  Note: the log restores
    removed *vertices* with their incident edges; edges internal to the
    survivors are untouched by a truss shrink because the maximal
    k-truss of an induced subgraph is vertex-induced here (we keep the
    convention that communities are vertex sets).
    """
    removed: Removal = []
    if trigger not in graph:
        return removed
    removed.append((trigger, set(graph.neighbors(trigger))))
    graph.remove_vertex(trigger)
    survivors = k_truss(graph, k)
    extra = [v for v in graph.vertices() if v not in survivors]
    for v in extra:
        removed.append((v, set(graph.neighbors(v))))
        graph.remove_vertex(v)
    return removed


def truss_deletion_chain(
    graph: AdjacencyGraph,
    query: Iterable[int],
    k: int,
    scores: Mapping[int, float],
    max_batches: int | None = None,
) -> tuple[list[set[int]], list[frozenset[int]]]:
    """Truss-cohesive analogue of :func:`repro.core.peeling.deletion_chain`.

    The input graph must be a connected k-truss containing Q; each chain
    element is the connected k-truss containing Q after peeling the
    smallest-score vertex (with truss cascade).
    """
    q = sorted(set(query))
    if not q:
        raise QueryError("query set must be non-empty")
    g = graph.copy()
    heap = [(scores[v], v) for v in g.vertices()]
    heapq.heapify(heap)
    current = set(g.vertices())
    chain: list[set[int]] = [set(current)]
    batches: list[frozenset[int]] = []
    query_set = set(q)
    while heap:
        _s, u = heapq.heappop(heap)
        if u not in g:
            continue
        if u in query_set:
            break
        removed = truss_cascade_recoverable(g, u, k)
        deleted = {v for v, _nbrs in removed}
        if deleted & query_set:
            restore_removed(g, removed)
            break
        if any(v not in g for v in q):
            restore_removed(g, removed)
            break
        component = g.component_of(q[0])
        if not all(v in component for v in q):
            restore_removed(g, removed)
            break
        dropped = set(g.vertices()) - component
        for v in dropped:
            g.remove_vertex(v)
        batch = frozenset(deleted | dropped)
        current -= batch
        batches.append(batch)
        chain.append(set(current))
        if max_batches is not None and len(chain) > max_batches + 1:
            chain.pop(0)
            batches.pop(0)
    return chain, batches


def truss_mac_at(
    graph: AdjacencyGraph,
    query: Iterable[int],
    k: int,
    scores: Mapping[int, float],
) -> frozenset[int]:
    """The non-contained truss-MAC at a fixed weight."""
    chain, _ = truss_deletion_chain(graph, query, k, scores, max_batches=0)
    return frozenset(chain[-1])


class TrussGlobalSearch(GlobalSearch):
    """Algorithm 1 with k-truss structural cohesiveness.

    Only the DFS cascade changes; partitioning of R, leaf maintenance on
    Gd and the Corollary-1 termination conditions are inherited verbatim
    — exactly the paper's claim that the framework is metric-agnostic.
    """

    def _cascade(self, graph: AdjacencyGraph, trigger: int) -> Removal:
        return truss_cascade_recoverable(graph, trigger, self.k)


def maximal_kt_truss(network, query, k: int, t: float):
    """The maximal (k,t)-truss: Lemma-3 pipeline with truss peeling."""
    q = sorted(set(query))
    dq = network.query_distance_filter(q, t)
    if any(v not in dq for v in q):
        return None
    filtered = network.social.graph.subgraph(dq)
    truss = k_truss_containing(filtered, q, k)
    if truss is None:
        return None
    return truss


def truss_mac_search(
    network,
    query: Iterable[int],
    k: int,
    t: float,
    region: PreferenceRegion,
    j: int = 1,
    problem: str = "nc",
    max_partitions: int | None = None,
):
    """End-to-end truss-MAC search (global algorithm only).

    Returns a list of :class:`repro.core.query.PartitionEntry`, or an
    empty list when the maximal (k,t)-truss does not exist.
    """
    if problem not in ("nc", "topj"):
        raise QueryError(f"unknown problem {problem!r}")
    truss = maximal_kt_truss(network, query, k, t)
    if truss is None:
        return []
    attrs = network.social.attributes_for(truss.vertices())
    gd = DominanceGraph(attrs, region)
    searcher = TrussGlobalSearch(
        truss, gd, query, k, region, max_partitions=max_partitions
    )
    if problem == "nc":
        return searcher.search_nc()
    return searcher.search_topj(j)
