"""Algorithm 1: the DFS-based global search (GS-T / GS-NC).

The search maintains a work queue of tasks ``(alive, batches, leaves,
cell)``: the current subgraph H (as its vertex set), the deletion history
(one batch per peeling round, for top-j backtracking), the current leaf
set of the restricted r-dominance graph G'd, and the partition ρ of R.

Per task, the pairwise score half-spaces of the current leaves are tested
against ρ.  If none crosses, the smallest-score leaf is unambiguous over
all of ρ: peel it (DFS cascade, lines 15-20), check the Corollary-1
early-termination conditions, and loop.  Otherwise ρ is refined by the
crossing half-spaces via the Algorithm-2 partition tree and each sub-cell
is re-queued — each inherits H and the history, exactly the recursion of
Algorithm 1 with the paper's half-space caching (each pair's half-space is
computed once, in :class:`DominanceGraph`).
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.deadline import Deadline
from repro.dominance.graph import DominanceGraph
from repro.errors import QueryError
from repro.geometry.cell import Cell
from repro.geometry.partition_tree import PartitionTree
from repro.geometry.region import PreferenceRegion
from repro.graph.adjacency import AdjacencyGraph
from repro.core.peeling import (
    cascade_delete_recoverable,
    restore_removed,
    restrict_to_query_component,
)
from repro.core.query import Community, PartitionEntry


@dataclass
class SearchStats:
    """Counters reported by a search run (Fig. 11 uses these)."""

    partitions: int = 0
    tasks: int = 0
    peel_rounds: int = 0
    halfspaces_inserted: int = 0
    candidates: int = 0  # used by local search
    extra: dict = field(default_factory=dict)


class GlobalSearch:
    """Algorithm 1 over a prepared H^t_k and its r-dominance graph."""

    def __init__(
        self,
        htk: AdjacencyGraph,
        gd: DominanceGraph,
        query: Iterable[int],
        k: int,
        region: PreferenceRegion,
        max_partitions: int | None = None,
        refinement: str = "arrangement",
        time_budget: float | None = None,
        deadline: Deadline | None = None,
    ) -> None:
        if refinement not in ("arrangement", "envelope"):
            raise QueryError(f"unknown refinement {refinement!r}")
        self.htk = htk
        self.gd = gd
        self.query = tuple(sorted(set(query)))
        self.query_set = set(self.query)
        self.k = k
        self.region = region
        self.max_partitions = max_partitions
        #: "arrangement" is the paper's Algorithm 1 (insert the pairwise
        #: half-spaces of *all* current leaf vertices, Line 7); "envelope"
        #: is an ablation that refines only by half-spaces against the
        #: current minimum (the lower envelope) — it yields the same
        #: non-contained MACs with far fewer partitions (see the ablation
        #: benchmark), but different top-j chain groupings.
        self.refinement = refinement
        #: Optional wall-clock cap in seconds; exceeded => QueryError.
        self.time_budget = time_budget
        #: Optional request-wide budget; exceeded => DeadlineExceeded.
        #: Unlike ``time_budget`` (a per-search knob that starts ticking
        #: here), the deadline covers the whole request and is checked
        #: every task and peeling round — this is what tames GS-T's
        #: partition explosion into a typed, bounded failure.
        self.deadline = deadline
        self.stats = SearchStats()

    # ------------------------------------------------------------------
    # leaf maintenance on the alive-restricted dominance graph
    # ------------------------------------------------------------------
    def _is_leaf(self, v: int, alive: frozenset[int]) -> bool:
        """No alive strict descendant (walking through dead vertices)."""
        stack = list(self.gd.children[v])
        seen: set[int] = set()
        while stack:
            c = stack.pop()
            if c in seen:
                continue
            seen.add(c)
            if c in alive:
                return False
            stack.extend(self.gd.children[c])
        return True

    def _updated_leaves(
        self,
        leaves: frozenset[int],
        batch: frozenset[int],
        alive: frozenset[int],
    ) -> frozenset[int]:
        """Leaves after removing ``batch``; new leaves are alive ancestors."""
        out = set(leaves) - batch
        candidates: set[int] = set()
        stack = [p for b in batch for p in self.gd.parents[b]]
        seen: set[int] = set()
        while stack:
            p = stack.pop()
            if p in seen:
                continue
            seen.add(p)
            if p in alive:
                candidates.add(p)
            else:
                stack.extend(self.gd.parents[p])
        for p in candidates:
            if p not in out and self._is_leaf(p, alive):
                out.add(p)
        return frozenset(out)

    # ------------------------------------------------------------------
    def _argmin_crossing(
        self,
        leaves: Iterable[int],
        u_min: int,
        cell: Cell,
        dominated: set[tuple[int, int]],
    ):
        """Half-spaces ``S(v) >= S(u_min)`` that cross the cell.

        Computing the smallest-score vertex only needs the lower envelope
        of the leaves' score functions, not their full arrangement: if
        every other leaf scores above ``u_min`` throughout the cell, the
        minimum is settled.  ``dominated`` caches (v, u) pairs already
        known to satisfy S(v) >= S(u) over this task's cell (the cell is
        fixed between peeling rounds of one task).
        """
        crossing = []
        for v in leaves:
            if v == u_min or (v, u_min) in dominated:
                continue
            h = self.gd.halfspace(v, u_min)
            side = cell.side_of(h)
            if side == "split":
                crossing.append(h)
            else:
                # "inside": v >= u_min everywhere.  "outside" can only be
                # an eps-scale tie (u_min was the argmin at the interior
                # point); either peel order is then acceptable — treat as
                # settled to avoid refining on degenerate hyperplanes.
                dominated.add((v, u_min))
        return crossing

    def _pairwise_crossing(
        self,
        leaves: Iterable[int],
        cell: Cell,
        resolved: set[tuple[int, int]],
    ):
        """All leaf-pair half-spaces crossing the cell (Algorithm 1, L7).

        ``resolved`` caches pairs already known not to cross this task's
        cell (the cell is fixed between peeling rounds of one task, and
        relations never un-resolve as leaves churn)."""
        ordered = sorted(leaves)
        crossing = []
        for i, u in enumerate(ordered):
            for v in ordered[i + 1 :]:
                key = (u, v)
                if key in resolved:
                    continue
                h = self.gd.halfspace(u, v)
                if cell.side_of(h) == "split":
                    crossing.append(h)
                else:
                    resolved.add(key)
        return crossing

    def _smallest_leaf(self, leaves: Iterable[int], cell: Cell) -> int:
        w = cell.interior_point()
        return min(leaves, key=lambda v: (self.gd.score_at(v, w), v))

    def _cascade(self, graph: AdjacencyGraph, trigger: int):
        """Structural cascade after deleting ``trigger`` (override point
        for other cohesiveness metrics, e.g. the k-truss extension)."""
        return cascade_delete_recoverable(graph, trigger, self.k)

    # ------------------------------------------------------------------
    def run(self) -> list[tuple[Cell, frozenset[int], tuple[frozenset[int], ...]]]:
        """Execute the search; returns (cell, final alive set, batches)."""
        alive0 = frozenset(self.htk.vertices())
        if not self.query_set <= alive0:
            raise QueryError("query vertices missing from H^t_k")
        leaves0 = frozenset(self.gd.leaves_within(alive0))
        root = Cell.from_region(self.region)
        results: list[
            tuple[Cell, frozenset[int], tuple[frozenset[int], ...]]
        ] = []
        queue: deque = deque([(alive0, (), leaves0, root)])
        deadline = (
            time.perf_counter() + self.time_budget
            if self.time_budget is not None
            else None
        )
        while queue:
            alive, batches, leaves, cell = queue.popleft()
            self.stats.tasks += 1
            if self.deadline is not None:
                self.deadline.check("global search")
            if (
                deadline is not None
                and self.stats.tasks % 16 == 0
                and time.perf_counter() > deadline
            ):
                raise QueryError(
                    f"global search exceeded its time budget "
                    f"({self.time_budget}s)"
                )
            graph = None  # built lazily: split-only tasks never peel
            dominated: set[tuple[int, int]] = set()
            while True:
                if self.deadline is not None:
                    self.deadline.check("global search peeling")
                u = self._smallest_leaf(leaves, cell)
                if self.refinement == "arrangement":
                    crossing = self._pairwise_crossing(
                        leaves, cell, dominated
                    )
                else:
                    crossing = self._argmin_crossing(
                        leaves, u, cell, dominated
                    )
                if crossing:
                    tree = PartitionTree(cell)
                    for h in crossing:
                        tree.insert(h)
                        self.stats.halfspaces_inserted += 1
                    for sub in tree.leaves():
                        queue.append((alive, batches, leaves, sub))
                    if (
                        self.max_partitions is not None
                        and len(results) + len(queue) > self.max_partitions
                    ):
                        raise QueryError(
                            "partition budget exceeded "
                            f"({self.max_partitions}); enlarge max_partitions"
                        )
                    break
                # u is the smallest-score leaf across the whole cell.
                if u in self.query_set:
                    results.append((cell, alive, batches))
                    break
                self.stats.peel_rounds += 1
                if graph is None:
                    graph = self.htk.subgraph(alive)
                removed = self._cascade(graph, u)
                deleted = {v for v, _nbrs in removed}
                if deleted & self.query_set:
                    results.append((cell, alive, batches))
                    restore_removed(graph, removed)
                    break
                dropped = restrict_to_query_component(graph, self.query)
                if dropped is None:
                    results.append((cell, alive, batches))
                    restore_removed(graph, removed)
                    break
                batch = frozenset(deleted | dropped)
                alive = alive - batch
                batches = batches + (batch,)
                leaves = self._updated_leaves(leaves, batch, alive)
        self.stats.partitions = len(results)
        return results

    # ------------------------------------------------------------------
    def search_nc(self) -> list[PartitionEntry]:
        """Problem 2: the non-contained MAC per partition of R."""
        return [
            PartitionEntry(cell, [Community(alive)])
            for cell, alive, _batches in self.run()
        ]

    def search_topj(self, j: int) -> list[PartitionEntry]:
        """Problem 1: the top-j MACs per partition of R (best first).

        The chain is recovered by backtracking the deletion history j-1
        times (line 13 of Algorithm 1): each backtrack unions the most
        recent batch back into the community.
        """
        if j < 1:
            raise QueryError(f"j must be >= 1, got {j}")
        entries = []
        for cell, alive, batches in self.run():
            chain = [Community(alive)]
            current = set(alive)
            for batch in reversed(batches):
                if len(chain) >= j:
                    break
                current |= batch
                chain.append(Community(current))
            entries.append(PartitionEntry(cell, chain))
        return entries
