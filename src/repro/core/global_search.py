"""Algorithm 1: the DFS-based global search (GS-T / GS-NC).

The search maintains a work queue of tasks ``(alive, batches, leaves,
cell)``: the current subgraph H (as its vertex set), the deletion history
(one batch per peeling round, for top-j backtracking), the current leaf
set of the restricted r-dominance graph G'd, and the partition ρ of R.

Per task, the pairwise score half-spaces of the current leaves are tested
against ρ.  If none crosses, the smallest-score leaf is unambiguous over
all of ρ: peel it (DFS cascade, lines 15-20), check the Corollary-1
early-termination conditions, and loop.  Otherwise ρ is refined by the
crossing half-spaces via the Algorithm-2 partition tree and each sub-cell
is re-queued — each inherits H and the history, exactly the recursion of
Algorithm 1 with the paper's half-space caching (each pair's half-space is
computed once, in :class:`DominanceGraph`).
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass, field

import numpy as np

from repro.deadline import Deadline
from repro.dominance.graph import DominanceGraph
from repro.errors import QueryError
from repro.geometry.cell import Cell
from repro.geometry.partition_tree import PartitionTree
from repro.geometry.region import PreferenceRegion
from repro.graph.adjacency import AdjacencyGraph
from repro.kernels.flatgraph import FlatGraph
from repro.kernels.search import (
    alive_degrees,
    cascade_rows,
    restrict_rows_incremental,
)
from repro.core.peeling import (
    cascade_delete_recoverable,
    restore_removed,
    restrict_to_query_component,
)
from repro.core.query import Community, PartitionEntry


@dataclass
class SearchStats:
    """Counters reported by a search run (Fig. 11 uses these)."""

    partitions: int = 0
    tasks: int = 0
    peel_rounds: int = 0
    halfspaces_inserted: int = 0
    candidates: int = 0  # used by local search
    extra: dict = field(default_factory=dict)


class GlobalSearch:
    """Algorithm 1 over a prepared H^t_k and its r-dominance graph."""

    def __init__(
        self,
        htk: AdjacencyGraph,
        gd: DominanceGraph,
        query: Iterable[int],
        k: int,
        region: PreferenceRegion,
        max_partitions: int | None = None,
        refinement: str = "arrangement",
        time_budget: float | None = None,
        deadline: Deadline | None = None,
        flat: FlatGraph | None = None,
        anytime: bool = False,
    ) -> None:
        if refinement not in ("arrangement", "envelope"):
            raise QueryError(f"unknown refinement {refinement!r}")
        self.htk = htk
        self.gd = gd
        self.query = tuple(sorted(set(query)))
        self.query_set = set(self.query)
        self.k = k
        self.region = region
        self.max_partitions = max_partitions
        #: "arrangement" is the paper's Algorithm 1 (insert the pairwise
        #: half-spaces of *all* current leaf vertices, Line 7); "envelope"
        #: is an ablation that refines only by half-spaces against the
        #: current minimum (the lower envelope) — it yields the same
        #: non-contained MACs with far fewer partitions (see the ablation
        #: benchmark), but different top-j chain groupings.
        self.refinement = refinement
        #: Optional wall-clock cap in seconds; exceeded => QueryError.
        self.time_budget = time_budget
        #: Optional request-wide budget; exceeded => DeadlineExceeded.
        #: Unlike ``time_budget`` (a per-search knob that starts ticking
        #: here), the deadline covers the whole request and is checked
        #: every task and peeling round — this is what tames GS-T's
        #: partition explosion into a typed, bounded failure.
        self.deadline = deadline
        #: Optional CSR view of ``htk`` (same vertex set).  When given,
        #: the per-task peeling runs over int row arrays with batch
        #: degree updates instead of dict subgraph copies — the "flat"
        #: search backend.  Subclasses that override :meth:`_cascade`
        #: for other cohesiveness metrics (e.g. the k-truss extension)
        #: simply never pass it and keep the reference path.
        self.flat = flat
        self._qrows: list[int] = [] if flat is None else flat.rows_of(
            self.query
        )
        #: Anytime mode: on deadline expiry, the in-progress and queued
        #: tasks are flushed as best-so-far results instead of raising.
        #: Their alive sets are feasible (connected k-cores ⊇ Q for the
        #: whole cell — structure does not depend on w), just not
        #: certified non-contained; ``partial`` marks them.
        self.anytime = anytime
        self.partial = False
        self._partial_from: int | None = None
        self.stats = SearchStats()

    # ------------------------------------------------------------------
    # leaf maintenance on the alive-restricted dominance graph
    # ------------------------------------------------------------------
    #: Packed-closure size cap for the flat leaf test: the bitset
    #: closures cost 2 * n * ceil(n / 8) bytes (64 MiB at the cap);
    #: beyond it the reachability walk wins on memory.
    _CLOSURE_MAX = 16384

    def _desc_closure(self) -> np.ndarray:
        """Packed transitive-descendant bitsets over flat rows.

        One row per flat row, one bit per *strict* descendant.  Built
        along ``gd.order`` (a topological order, so a single OR-sweep
        suffices) and cached on the dominance graph — ``gd`` outlives
        this searcher, and the closure is a pure function of
        (gd, flat).
        """
        fg = self.flat
        cached = getattr(self.gd, "_flat_desc_closure", None)
        if cached is not None and cached[0] is fg:
            return cached[1]
        n = fg.n
        bit = np.left_shift(np.uint8(1), 7 - (np.arange(n) & 7))
        desc = np.zeros((n, (n + 7) // 8), np.uint8)
        order_rows = fg.rows_of(self.gd.order)
        for v, r in zip(reversed(self.gd.order), reversed(order_rows)):
            kids = self.gd.children[v]
            if kids:
                row = desc[r]
                for c in fg.rows_of(kids):
                    row |= desc[c]
                    row[c >> 3] |= bit[c]
        self.gd._flat_desc_closure = (fg, desc)
        return desc

    def _updated_leaves_flat(
        self,
        leaves: frozenset[int],
        batch: frozenset[int],
        mask: np.ndarray,
    ) -> frozenset[int]:
        """Flat-backend leaf update: the reference candidate walk with
        the per-candidate ``_is_leaf`` reachability replaced by one
        packed AND row against the alive mask (``desc ∩ alive = ∅``) —
        the leaf test dominates the walk, and the closure turns it
        from a DAG traversal into a 1-row vector op."""
        fg = self.flat
        desc = self._desc_closure()
        alive_packed = np.packbits(mask)
        out = set(leaves) - batch
        candidates: list[int] = []
        stack = [p for b in batch for p in self.gd.parents[b]]
        seen: set[int] = set()
        rows_alive = mask  # row-indexed aliveness, in sync with alive
        row_of = fg.row_of
        while stack:
            p = stack.pop()
            if p in seen:
                continue
            seen.add(p)
            if rows_alive[row_of(p)]:
                if p not in out:
                    candidates.append(p)
            else:
                stack.extend(self.gd.parents[p])
        if candidates:
            cand_rows = np.asarray(fg.rows_of(candidates), np.int64)
            is_leaf = ~(desc[cand_rows] & alive_packed).any(axis=1)
            out.update(
                p for p, ok in zip(candidates, is_leaf.tolist()) if ok
            )
        return frozenset(out)

    def _is_leaf(self, v: int, alive: frozenset[int]) -> bool:
        """No alive strict descendant (walking through dead vertices)."""
        stack = list(self.gd.children[v])
        seen: set[int] = set()
        while stack:
            c = stack.pop()
            if c in seen:
                continue
            seen.add(c)
            if c in alive:
                return False
            stack.extend(self.gd.children[c])
        return True

    def _updated_leaves(
        self,
        leaves: frozenset[int],
        batch: frozenset[int],
        alive: frozenset[int],
    ) -> frozenset[int]:
        """Leaves after removing ``batch``; new leaves are alive ancestors."""
        out = set(leaves) - batch
        candidates: set[int] = set()
        stack = [p for b in batch for p in self.gd.parents[b]]
        seen: set[int] = set()
        while stack:
            p = stack.pop()
            if p in seen:
                continue
            seen.add(p)
            if p in alive:
                candidates.add(p)
            else:
                stack.extend(self.gd.parents[p])
        for p in candidates:
            if p not in out and self._is_leaf(p, alive):
                out.add(p)
        return frozenset(out)

    # ------------------------------------------------------------------
    def _argmin_crossing(
        self,
        leaves: Iterable[int],
        u_min: int,
        cell: Cell,
        dominated: set[tuple[int, int]],
    ):
        """Half-spaces ``S(v) >= S(u_min)`` that cross the cell.

        Computing the smallest-score vertex only needs the lower envelope
        of the leaves' score functions, not their full arrangement: if
        every other leaf scores above ``u_min`` throughout the cell, the
        minimum is settled.  ``dominated`` caches (v, u) pairs already
        known to satisfy S(v) >= S(u) over this task's cell (the cell is
        fixed between peeling rounds of one task).
        """
        # Sorted like _pairwise_crossing: half-space insertion order
        # shapes the partition tree, and set iteration order is an
        # insertion-history artifact the two backends don't share.
        crossing = []
        for v in sorted(leaves):
            if v == u_min or (v, u_min) in dominated:
                continue
            h = self.gd.halfspace(v, u_min)
            side = cell.side_of(h)
            if side == "split":
                crossing.append(h)
            else:
                # "inside": v >= u_min everywhere.  "outside" can only be
                # an eps-scale tie (u_min was the argmin at the interior
                # point); either peel order is then acceptable — treat as
                # settled to avoid refining on degenerate hyperplanes.
                dominated.add((v, u_min))
        return crossing

    def _pairwise_crossing(
        self,
        leaves: Iterable[int],
        cell: Cell,
        resolved: set[tuple[int, int]],
    ):
        """All leaf-pair half-spaces crossing the cell (Algorithm 1, L7).

        ``resolved`` caches pairs already known not to cross this task's
        cell (the cell is fixed between peeling rounds of one task, and
        relations never un-resolve as leaves churn)."""
        ordered = sorted(leaves)
        crossing = []
        for i, u in enumerate(ordered):
            for v in ordered[i + 1 :]:
                key = (u, v)
                if key in resolved:
                    continue
                h = self.gd.halfspace(u, v)
                if cell.side_of(h) == "split":
                    crossing.append(h)
                else:
                    resolved.add(key)
        return crossing

    def _smallest_leaf(self, leaves: Iterable[int], cell: Cell) -> int:
        w = cell.interior_point()
        return min(leaves, key=lambda v: (self.gd.score_at(v, w), v))

    def _cascade(self, graph: AdjacencyGraph, trigger: int):
        """Structural cascade after deleting ``trigger`` (override point
        for other cohesiveness metrics, e.g. the k-truss extension)."""
        return cascade_delete_recoverable(graph, trigger, self.k)

    def _drain_partial(self, results, queue, current) -> None:
        """Anytime expiry: flush current + queued tasks as best-so-far."""
        self.partial = True
        self._partial_from = len(results)
        results.append(current)
        for alive, batches, _leaves, cell in queue:
            results.append((cell, alive, batches))
        queue.clear()

    # ------------------------------------------------------------------
    def run(self) -> list[tuple[Cell, frozenset[int], tuple[frozenset[int], ...]]]:
        """Execute the search; returns (cell, final alive set, batches)."""
        alive0 = frozenset(self.htk.vertices())
        if not self.query_set <= alive0:
            raise QueryError("query vertices missing from H^t_k")
        leaves0 = frozenset(self.gd.leaves_within(alive0))
        root = Cell.from_region(self.region)
        results: list[
            tuple[Cell, frozenset[int], tuple[frozenset[int], ...]]
        ] = []
        queue: deque = deque([(alive0, (), leaves0, root)])
        deadline = (
            time.perf_counter() + self.time_budget
            if self.time_budget is not None
            else None
        )
        while queue:
            alive, batches, leaves, cell = queue.popleft()
            self.stats.tasks += 1
            if self.deadline is not None:
                if self.anytime:
                    if self.deadline.expired():
                        self._drain_partial(
                            results, queue, (cell, alive, batches)
                        )
                        break
                else:
                    self.deadline.check("global search")
            if (
                deadline is not None
                and self.stats.tasks % 16 == 0
                and time.perf_counter() > deadline
            ):
                raise QueryError(
                    f"global search exceeded its time budget "
                    f"({self.time_budget}s)"
                )
            graph = None  # built lazily: split-only tasks never peel
            mask = None  # flat backend: lazy alive mask + degree array
            deg = None
            dominated: set[tuple[int, int]] = set()
            while True:
                if self.deadline is not None:
                    if self.anytime:
                        if self.deadline.expired():
                            self._drain_partial(
                                results, queue, (cell, alive, batches)
                            )
                            break
                    else:
                        self.deadline.check("global search peeling")
                u = self._smallest_leaf(leaves, cell)
                if self.refinement == "arrangement":
                    crossing = self._pairwise_crossing(
                        leaves, cell, dominated
                    )
                else:
                    crossing = self._argmin_crossing(
                        leaves, u, cell, dominated
                    )
                if crossing:
                    tree = PartitionTree(cell)
                    for h in crossing:
                        tree.insert(h)
                        self.stats.halfspaces_inserted += 1
                    for sub in tree.leaves():
                        queue.append((alive, batches, leaves, sub))
                    if (
                        self.max_partitions is not None
                        and len(results) + len(queue) > self.max_partitions
                    ):
                        raise QueryError(
                            "partition budget exceeded "
                            f"({self.max_partitions}); enlarge max_partitions"
                        )
                    break
                # u is the smallest-score leaf across the whole cell.
                if u in self.query_set:
                    results.append((cell, alive, batches))
                    break
                self.stats.peel_rounds += 1
                if self.flat is not None:
                    # Flat path: batch cascade + component restriction
                    # over row masks.  On the Corollary-1 breaks the
                    # mutated mask is simply discarded (the reference
                    # path restores its subgraph only to break too).
                    fg = self.flat
                    if mask is None:
                        mask = np.zeros(fg.n, bool)
                        mask[fg.rows_of(alive)] = True
                        deg = alive_degrees(fg, mask)
                    removed_rows = cascade_rows(
                        fg, deg, mask, fg.row_of(u), self.k
                    )
                    ids = fg.ids
                    deleted = {ids[i] for i in removed_rows.tolist()}
                    if deleted & self.query_set:
                        results.append((cell, alive, batches))
                        break
                    dropped_rows = restrict_rows_incremental(
                        fg, mask, self._qrows, removed_rows
                    )
                    if dropped_rows is None:
                        results.append((cell, alive, batches))
                        break
                    batch = frozenset(
                        deleted | {ids[i] for i in dropped_rows.tolist()}
                    )
                else:
                    if graph is None:
                        graph = self.htk.subgraph(alive)
                    removed = self._cascade(graph, u)
                    deleted = {v for v, _nbrs in removed}
                    if deleted & self.query_set:
                        results.append((cell, alive, batches))
                        restore_removed(graph, removed)
                        break
                    dropped = restrict_to_query_component(
                        graph, self.query
                    )
                    if dropped is None:
                        results.append((cell, alive, batches))
                        restore_removed(graph, removed)
                        break
                    batch = frozenset(deleted | dropped)
                alive = alive - batch
                batches = batches + (batch,)
                if self.flat is not None and self.flat.n <= self._CLOSURE_MAX:
                    leaves = self._updated_leaves_flat(leaves, batch, mask)
                else:
                    leaves = self._updated_leaves(leaves, batch, alive)
        self.stats.partitions = len(results)
        return results

    # ------------------------------------------------------------------
    def _is_partial(self, index: int) -> bool:
        """Whether result ``index`` was flushed by an anytime drain."""
        return self._partial_from is not None and index >= self._partial_from

    def search_nc(self) -> list[PartitionEntry]:
        """Problem 2: the non-contained MAC per partition of R."""
        return [
            PartitionEntry(
                cell, [Community(alive, partial=self._is_partial(i))]
            )
            for i, (cell, alive, _batches) in enumerate(self.run())
        ]

    def search_topj(self, j: int) -> list[PartitionEntry]:
        """Problem 1: the top-j MACs per partition of R (best first).

        The chain is recovered by backtracking the deletion history j-1
        times (line 13 of Algorithm 1): each backtrack unions the most
        recent batch back into the community.
        """
        if j < 1:
            raise QueryError(f"j must be >= 1, got {j}")
        entries = []
        for i, (cell, alive, batches) in enumerate(self.run()):
            partial = self._is_partial(i)
            chain = [Community(alive, partial=partial)]
            current = set(alive)
            for batch in reversed(batches):
                if len(chain) >= j:
                    break
                current |= batch
                chain.append(Community(current, partial=partial))
            entries.append(PartitionEntry(cell, chain))
        return entries
