"""Exact peeling at a fixed weight vector: the point oracle.

At a fixed weight w the score of every vertex is a scalar, so the MAC
chain is fully determined: repeatedly delete the globally smallest-score
vertex, cascade the structural (degree < k) deletions depth-first, and
restrict to the query component — exactly the DFS procedure of
Algorithm 1 with a one-cell arrangement.  Each surviving snapshot is an
MAC (Lemma 5), the last one the non-contained MAC (Lemma 6).

Used as: ground-truth oracle in tests, certification step of the local
search's Verify, and chain reconstruction for the top-j problems.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Mapping

from repro.errors import QueryError
from repro.graph.adjacency import AdjacencyGraph


def cascade_delete(
    graph: AdjacencyGraph, trigger: int, k: int
) -> set[int]:
    """Delete ``trigger`` and everything that structurally follows.

    Removes ``trigger`` from ``graph`` (mutating it), then recursively any
    vertex whose degree falls below ``k`` — the DFS procedure, lines 15-20
    of Algorithm 1.  Returns the set of deleted vertices.
    """
    return {v for v, _nbrs in cascade_delete_recoverable(graph, trigger, k)}


Removal = list[tuple[int, set[int]]]


def cascade_delete_recoverable(
    graph: AdjacencyGraph, trigger: int, k: int
) -> Removal:
    """Cascade-delete, returning an undo log for :func:`restore_removed`.

    Each entry records a removed vertex with its adjacency at removal
    time.  Undoing costs O(removed subgraph) instead of the O(m) full
    graph copy a snapshot would need — this is what keeps long peeling
    chains (hundreds of rounds) linear overall.
    """
    removed: Removal = []
    deleted: set[int] = set()
    stack = [trigger]
    while stack:
        v = stack.pop()
        if v not in graph or v in deleted:
            continue
        deleted.add(v)
        neighbors = set(graph.neighbors(v))
        graph.remove_vertex(v)
        removed.append((v, neighbors))
        for u in neighbors:
            if u not in deleted and graph.degree(u) < k:
                stack.append(u)
    return removed


def restore_removed(graph: AdjacencyGraph, removed: Removal) -> None:
    """Undo a :func:`cascade_delete_recoverable` (reverse order)."""
    for v, neighbors in reversed(removed):
        graph.add_vertex(v)
        for u in neighbors:
            graph.add_edge(v, u)


def restrict_to_query_component(
    graph: AdjacencyGraph, query: Iterable[int]
) -> set[int] | None:
    """Drop components not containing Q; None when Q breaks apart.

    Returns the set of *dropped* vertices on success (possibly empty).
    """
    q = list(query)
    if any(v not in graph for v in q):
        return None
    component = graph.component_of(q[0])
    if not all(v in component for v in q):
        return None
    dropped = set(graph.vertices()) - component
    for v in dropped:
        graph.remove_vertex(v)
    return dropped


def deletion_chain(
    graph: AdjacencyGraph,
    query: Iterable[int],
    k: int,
    scores: Mapping[int, float],
    max_batches: int | None = None,
    flat=None,
) -> tuple[list[set[int]], list[frozenset[int]]]:
    """Peel ``graph`` at fixed scores; return (chain, batches).

    ``chain[i]`` is the vertex set of the i-th MAC (chain[0] = the input,
    chain[-1] = the non-contained MAC); ``batches[i]`` is the vertex set
    removed between chain[i] and chain[i+1].  The input graph must be a
    connected k-core containing Q (H^t_k or any MAC); it is not mutated.

    ``max_batches`` optionally truncates the *front* of the chain: only
    the last ``max_batches + 1`` communities are needed for a top-j query
    with j = max_batches + 1; peeling still runs to the end, but recorded
    history is bounded.

    ``flat`` optionally supplies a CSR view of ``graph`` (a
    :class:`~repro.kernels.flatgraph.FlatGraph` over the same vertex
    set); the chain is then peeled over int row arrays with batch
    degree updates — same output, no dict copies.
    """
    if flat is not None:
        from repro.kernels.search import deletion_chain_rows

        return deletion_chain_rows(flat, query, k, scores, max_batches)
    q = list(query)
    if not q:
        raise QueryError("query set must be non-empty")
    g = graph.copy()
    heap = [(scores[v], v) for v in g.vertices()]
    heapq.heapify(heap)
    current = set(g.vertices())
    chain: list[set[int]] = [set(current)]
    batches: list[frozenset[int]] = []
    query_set = set(q)
    while heap:
        s, u = heapq.heappop(heap)
        if u not in g:
            continue
        if u in query_set:
            break  # Corollary 1, condition (1): Q member is the minimum.
        removed = cascade_delete_recoverable(g, u, k)
        deleted = {v for v, _nbrs in removed}
        if deleted & query_set:
            restore_removed(g, removed)
            break  # Corollary 1, condition (2): cascade destroys Q.
        dropped = restrict_to_query_component(g, q)
        if dropped is None:
            restore_removed(g, removed)
            break
        batch = frozenset(deleted | dropped)
        current -= batch
        batches.append(batch)
        chain.append(set(current))
        if max_batches is not None and len(chain) > max_batches + 1:
            chain.pop(0)
            batches.pop(0)
    return chain, batches


def nc_mac_at(
    graph: AdjacencyGraph,
    query: Iterable[int],
    k: int,
    scores: Mapping[int, float],
    flat=None,
) -> frozenset[int]:
    """The non-contained MAC at a fixed weight (last element of the chain)."""
    chain, _batches = deletion_chain(
        graph, query, k, scores, max_batches=0, flat=flat
    )
    return frozenset(chain[-1])


def top_j_at(
    graph: AdjacencyGraph,
    query: Iterable[int],
    k: int,
    scores: Mapping[int, float],
    j: int,
    flat=None,
) -> list[frozenset[int]]:
    """Top-j MACs at a fixed weight, best (highest score) first."""
    chain, _batches = deletion_chain(
        graph, query, k, scores, max_batches=max(j - 1, 0), flat=flat
    )
    return [frozenset(c) for c in reversed(chain[-j:])]
