"""The paper's primary contribution: MAC search algorithms.

Public entry points live in :mod:`repro.core.api` — ``gs_topj``/``gs_nc``
(Algorithm 1, global search) and ``ls_topj``/``ls_nc`` (Algorithms 3-5,
local search), plus the generic :func:`mac_search` dispatcher.
"""

from repro.core.api import (
    MACSearchResult,
    gs_nc,
    gs_topj,
    ls_nc,
    ls_topj,
    mac_search,
)
from repro.core.query import Community, MACQuery, PartitionEntry

__all__ = [
    "MACQuery",
    "Community",
    "PartitionEntry",
    "MACSearchResult",
    "mac_search",
    "gs_topj",
    "gs_nc",
    "ls_topj",
    "ls_nc",
]
