"""Query and result types for MAC search."""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.errors import QueryError
from repro.geometry.cell import Cell
from repro.geometry.halfspace import score
from repro.geometry.region import PreferenceRegion


@dataclass(frozen=True)
class MACQuery:
    """A multi-attributed community search query (Q, k, t, R, j)."""

    query: tuple[int, ...]
    k: int
    t: float
    region: PreferenceRegion
    j: int = 1

    def __post_init__(self) -> None:
        if not self.query:
            raise QueryError("query user set Q must be non-empty")
        if self.k < 1:
            raise QueryError(f"coreness threshold k must be >= 1, got {self.k}")
        if self.t < 0:
            raise QueryError(f"distance threshold t must be >= 0, got {self.t}")
        if self.j < 1:
            raise QueryError(f"j must be >= 1, got {self.j}")

    @staticmethod
    def make(
        query: Iterable[int],
        k: int,
        t: float,
        region: PreferenceRegion,
        j: int = 1,
    ) -> MACQuery:
        return MACQuery(tuple(sorted(set(query))), k, t, region, j)


class Community:
    """An MAC: an immutable vertex set with score helpers.

    ``partial`` marks an anytime best-so-far answer: a feasible
    connected k-core containing Q that was not certified non-contained
    before the deadline expired.  It is provenance, not identity —
    equality and hashing compare members only, so a partial answer that
    happens to equal the exact one compares equal to it.
    """

    __slots__ = ("members", "partial")

    def __init__(
        self, members: Iterable[int], partial: bool = False
    ) -> None:
        self.members = frozenset(members)
        self.partial = partial

    def __len__(self) -> int:
        return len(self.members)

    def __contains__(self, v: int) -> bool:
        return v in self.members

    def __iter__(self):
        return iter(self.members)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Community) and self.members == other.members

    def __hash__(self) -> int:
        return hash(self.members)

    def score_at(
        self, w_reduced: np.ndarray, attributes: Mapping[int, np.ndarray]
    ) -> float:
        """Community score S(H) = min over members (Eq. 2) at weight w."""
        return min(
            score(attributes[v], np.asarray(w_reduced, dtype=float))
            for v in self.members
        )

    def min_vertex_at(
        self, w_reduced: np.ndarray, attributes: Mapping[int, np.ndarray]
    ) -> int:
        """The smallest-score member at weight w (ties by id)."""
        w = np.asarray(w_reduced, dtype=float)
        return min(
            self.members, key=lambda v: (score(attributes[v], w), v)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mark = ", partial" if self.partial else ""
        shown = sorted(self.members)
        if len(shown) > 8:
            return f"Community({shown[:8]}... |{len(shown)}|{mark})"
        return f"Community({shown}{mark})"


@dataclass
class PartitionEntry:
    """One partition of R with its associated communities.

    ``communities`` holds the top-j chain (best first) for Problem 1, or a
    single-element list (the non-contained MAC) for Problem 2.
    """

    cell: Cell
    communities: list[Community] = field(default_factory=list)

    @property
    def best(self) -> Community:
        return self.communities[0]

    def sample_weight(self) -> np.ndarray:
        """A representative weight vector inside the partition."""
        return self.cell.interior_point()
