"""`PoolExecutor`: adapts a :class:`WorkerPool` to the service executor
protocol, so :class:`~repro.service.MACService` can serve from a
multi-process tier exactly as it serves from an in-process engine —
including the zero-downtime admin surface (live snapshot reload, fleet
resize).
"""

from __future__ import annotations

from repro.engine.request import MACRequest
from repro.errors import ReloadError, SnapshotError
from repro.pool.pool import WorkerPool


class PoolExecutor:
    """Executor over a worker-process tier.

    ``remote`` is true: every call crosses a process boundary, so the
    server runs them on its thread pool instead of the event loop.
    ``engine`` is ``None`` by design — in pool mode the parent's engine
    exists only to be forked, never to answer queries.
    """

    kind = "pool"
    remote = True
    engine = None

    def __init__(self, pool: WorkerPool) -> None:
        self.pool = pool

    @property
    def num_workers(self) -> int:
        return self.pool.num_workers

    def search_wire(self, request: MACRequest) -> dict:
        return self.pool.search_wire(request)

    def explain_wire(self, request: MACRequest) -> dict:
        return self.pool.explain_wire(request)

    def telemetry_wire(self) -> dict:
        return self.pool.telemetry_wire()

    def fingerprint(self) -> str | None:
        return self.pool.fingerprint

    def snapshot_wire(self) -> dict:
        return self.pool.snapshot_wire()

    def workers_wire(self) -> dict:
        return self.pool.workers_wire()

    def pool_wire(self) -> dict:
        return self.pool.pool_wire()

    def reload(self, snapshot_path) -> dict:
        """Live snapshot swap: load ``snapshot_path`` into a fresh
        engine, then :meth:`WorkerPool.swap` the fleet onto it.

        Validation happens before any worker is touched — a missing,
        corrupt, or wrong-network snapshot (or an injected
        ``corrupt_snapshot`` fault) raises a typed
        :class:`~repro.errors.ReloadError` with the serving fleet
        untouched.
        """
        from repro.engine.engine import MACEngine
        from repro.store.snapshot import snapshot_digest

        path = str(snapshot_path)
        try:
            plan = self.pool.fault_plan
            if plan:
                plan.check_snapshot_load(path)
            digest = snapshot_digest(path)
            # Loading into the live network object is safe: the content
            # fingerprint is checked before any in-place mutation, so a
            # snapshot that gets as far as mutating is content-identical.
            engine = MACEngine.load(path, self.pool.network, mmap=True)
        except SnapshotError as exc:
            raise ReloadError(
                f"reload of {path} rolled back before any worker change: {exc}"
            ) from exc
        return self.pool.swap(engine, source=path, index_digest=digest)

    def resize(self, num_workers: int) -> dict:
        return self.pool.resize(num_workers)

    def mutate_wire(self, mutations: list) -> dict:
        """Apply a live mutation batch fleet-wide (parent first, then
        broadcast; see :meth:`WorkerPool.mutate_wire`)."""
        return self.pool.mutate_wire(mutations)

    def close(self, timeout: float | None = None) -> None:
        if timeout is None:
            self.pool.stop()
        else:
            self.pool.stop(timeout=timeout)
