"""`PoolExecutor`: adapts a :class:`WorkerPool` to the service executor
protocol, so :class:`~repro.service.MACService` can serve from a
multi-process tier exactly as it serves from an in-process engine.
"""

from __future__ import annotations

from repro.engine.request import MACRequest
from repro.pool.pool import WorkerPool


class PoolExecutor:
    """Executor over a worker-process tier.

    ``remote`` is true: every call crosses a process boundary, so the
    server runs them on its thread pool instead of the event loop.
    ``engine`` is ``None`` by design — in pool mode the parent's engine
    exists only to be forked, never to answer queries.
    """

    kind = "pool"
    remote = True
    engine = None

    def __init__(self, pool: WorkerPool) -> None:
        self.pool = pool

    @property
    def num_workers(self) -> int:
        return self.pool.num_workers

    def search_wire(self, request: MACRequest) -> dict:
        return self.pool.search_wire(request)

    def explain_wire(self, request: MACRequest) -> dict:
        return self.pool.explain_wire(request)

    def telemetry_wire(self) -> dict:
        return self.pool.telemetry_wire()

    def fingerprint(self) -> str | None:
        return self.pool.fingerprint

    def workers_wire(self) -> dict:
        return self.pool.workers_wire()

    def pool_wire(self) -> dict:
        return self.pool.pool_wire()

    def close(self) -> None:
        self.pool.stop()
