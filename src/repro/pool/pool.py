"""`WorkerPool`: dispatcher + supervisor over N forked engine processes.

The parent loads (or is handed) one warm :class:`~repro.engine.MACEngine`
and forks ``num_workers`` children from it.  Fork gives copy-on-write
sharing of everything the engine already built — G-tree matrices, CSR
views, coreness arrays, warmed stage caches — so N workers do not pay
N× memory; snapshot payloads loaded with ``mmap=True`` are additionally
file-backed and page-shared.  The parent engine is never queried in
pool mode (its locks are free at every fork, which is what makes
restart-time forking from a threaded parent safe).

**Affinity dispatch.**  A request's affinity worker is a stable hash of
its ``(Q, k, t)`` stage-cache prefix, so repeats and siblings of a query
land on the worker whose per-process LRU caches already hold their
filter/core/dominance state.  When the affinity target's queue is
``spill_depth`` deep and a strictly shallower worker exists, the request
spills to the least-loaded worker — latency beats cache locality once a
queue forms.  A dead target fails over the same way.

**Supervision.**  A supervisor thread waits on the process sentinels.
When a worker dies (crash, SIGKILL, OOM), only the requests in flight on
that worker fail — typed :class:`~repro.errors.WorkerCrashed` — and a
replacement is forked from the parent engine, with exponential backoff
if a worker crash-loops at boot.  Requests on other workers are
untouched; the pool never hangs on a dead process.
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
import time
import warnings
import zlib
from concurrent.futures import Future
from multiprocessing.connection import wait as _sentinel_wait

from repro.engine import merge_telemetry
from repro.engine.request import MACRequest
from repro.errors import ServiceError, WorkerCrashed
from repro.pool.worker import worker_main
from repro.service.protocol import (
    error_from_wire,
    telemetry_from_wire,
    telemetry_to_wire,
)
from repro.store.fingerprint import network_fingerprint


class _PipeDied(Exception):
    """Internal: a send failed because the worker's pipe is gone."""


class _Worker:
    """Parent-side state of the process currently filling one slot."""

    def __init__(self, slot: int, process, conn) -> None:
        self.slot = slot
        self.process = process
        self.conn = conn
        self.send_lock = threading.Lock()
        self.pending: dict[int, Future] = {}
        self.ready = threading.Event()
        self.info: dict = {}
        self.alive = True
        self.started_at = time.monotonic()
        self.served = 0

    @property
    def depth(self) -> int:
        return len(self.pending)


class WorkerPool:
    """A supervised tier of ``num_workers`` engine processes.

    Parameters
    ----------
    engine:
        The warm parent engine every worker is forked from.  In pool
        mode the parent must not run searches on it — it exists to be
        forked (copy-on-write) at start and on every restart.
    num_workers:
        Worker processes (slots).  Slots are stable across restarts, so
        affinity routing survives a crash.
    spill_depth:
        In-flight requests on the affinity worker before new arrivals
        spill to the least-loaded worker.
    start_timeout:
        Seconds to wait for every worker's ready handshake in
        :meth:`start`.
    """

    def __init__(
        self,
        engine,
        num_workers: int,
        *,
        spill_depth: int = 4,
        start_timeout: float = 120.0,
    ) -> None:
        if num_workers < 1:
            raise ServiceError(
                f"num_workers must be >= 1, got {num_workers}"
            )
        if spill_depth < 1:
            raise ServiceError(
                f"spill_depth must be >= 1, got {spill_depth}"
            )
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-unix
            raise ServiceError(
                "the worker tier needs the fork start method (unix only); "
                "serve with --worker-processes 0 (threads) instead"
            ) from exc
        self._engine = engine
        self.num_workers = num_workers
        self.spill_depth = spill_depth
        self.start_timeout = start_timeout
        self._fingerprint: str | None = None
        self._lock = threading.Lock()
        self._workers: list[_Worker | None] = [None] * num_workers
        self._req_ids = itertools.count(1)
        self._started = False
        self._stopping = threading.Event()
        self._supervisor: threading.Thread | None = None
        self._restarts = [0] * num_workers
        self._fast_crashes = 0
        self._crashed_requests = 0
        self._dispatched = {"affinity": 0, "spill": 0, "failover": 0}
        self._last_tel: dict[int, dict] = {}
        self._retired_tel = None  # EngineTelemetry of dead workers
        self._started_at = time.monotonic()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str | None:
        """Content fingerprint of the parent engine's network."""
        return self._fingerprint

    def start(self) -> WorkerPool:
        """Fork the workers, wait for their ready handshakes, supervise."""
        if self._started:
            raise ServiceError("worker pool already started")
        self._started = True
        self._started_at = time.monotonic()
        self._fingerprint = network_fingerprint(self._engine.network)
        for slot in range(self.num_workers):
            self._spawn(slot)
        deadline = time.monotonic() + self.start_timeout
        for worker in list(self._workers):
            remaining = max(0.0, deadline - time.monotonic())
            if not worker.ready.wait(timeout=remaining):
                self.stop()
                raise ServiceError(
                    f"worker {worker.slot} did not become ready within "
                    f"{self.start_timeout:g}s"
                )
        self._supervisor = threading.Thread(
            target=self._supervise, name="mac-pool-supervisor", daemon=True
        )
        self._supervisor.start()
        return self

    def _spawn(self, slot: int) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        with warnings.catch_warnings():
            # Python 3.12+ warns on fork() from a multi-threaded
            # process.  Safe here by construction: the child touches
            # only the pre-fork engine — whose locks the parent is not
            # holding, because the parent never searches in pool mode —
            # and its own pipe end.
            warnings.simplefilter("ignore", DeprecationWarning)
            process = self._ctx.Process(
                target=worker_main,
                args=(slot, child_conn, self._engine, self._fingerprint),
                name=f"mac-pool-worker-{slot}",
                daemon=True,
            )
            process.start()
        child_conn.close()
        worker = _Worker(slot, process, parent_conn)
        with self._lock:
            self._workers[slot] = worker
        threading.Thread(
            target=self._receive, args=(worker,),
            name=f"mac-pool-recv-{slot}", daemon=True,
        ).start()
        return worker

    def stop(self, timeout: float = 5.0) -> None:
        """Drain and stop every worker; fail leftover in-flight requests.

        Workers serve their queued ops before the stop sentinel (the
        pipe is FIFO), so a normal stop loses nothing; a wedged worker
        is terminated after ``timeout`` and its pending requests fail
        with :class:`WorkerCrashed`.  Idempotent.
        """
        self._stopping.set()
        with self._lock:
            workers = [w for w in self._workers if w is not None]
        for worker in workers:
            if not worker.alive:
                continue
            try:
                with worker.send_lock:
                    worker.conn.send(None)
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + timeout
        for worker in workers:
            worker.process.join(
                timeout=max(0.1, deadline - time.monotonic())
            )
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
                if worker.process.is_alive():  # pragma: no cover
                    worker.process.kill()
                    worker.process.join(timeout=1.0)
        error = WorkerCrashed(
            "the worker pool was stopped with this request in flight"
        )
        leftovers: list[Future] = []
        with self._lock:
            for worker in workers:
                worker.alive = False
                leftovers.extend(worker.pending.values())
                worker.pending.clear()
        for future in leftovers:
            if not future.done():
                future.set_exception(error)
        for worker in workers:
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
        if self._supervisor is not None:
            self._supervisor.join(timeout=2.0)
            self._supervisor = None

    def __enter__(self) -> WorkerPool:
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # receive / supervise
    # ------------------------------------------------------------------
    def _receive(self, worker: _Worker) -> None:
        while True:
            try:
                message = worker.conn.recv()
            except (EOFError, OSError):
                return  # worker exited, or the pool closed the pipe
            if message[0] == "__ready__":
                worker.info = message[1]
                worker.ready.set()
                continue
            req_id, ok, payload = message
            with self._lock:
                future = worker.pending.pop(req_id, None)
                worker.served += 1
            if future is None:
                continue  # abandoned (e.g. a timed-out telemetry poll)
            if ok:
                future.set_result(payload)
            else:
                future.set_exception(error_from_wire(payload))

    def _supervise(self) -> None:
        while not self._stopping.is_set():
            with self._lock:
                sentinels = {
                    w.process.sentinel: w
                    for w in self._workers
                    if w is not None and w.alive
                }
            if not sentinels:
                self._stopping.wait(0.2)
                continue
            for sentinel in _sentinel_wait(list(sentinels), timeout=0.5):
                self._on_death(sentinels[sentinel])

    def _on_death(self, worker: _Worker) -> None:
        """Fail the dead worker's in-flight requests; fork a replacement."""
        with self._lock:
            current = self._workers[worker.slot]
            if not worker.alive or current is not worker:
                return  # already handled (send-failure path raced us)
            worker.alive = False
            pending = list(worker.pending.values())
            worker.pending.clear()
            self._crashed_requests += len(pending)
            last_tel = self._last_tel.pop(worker.slot, None)
        if last_tel is not None:
            # Keep the dead worker's last-seen counters in the merged
            # fleet telemetry so restarts do not march totals backwards.
            tel = telemetry_from_wire(last_tel)
            self._retired_tel = (
                tel if self._retired_tel is None
                else merge_telemetry([self._retired_tel, tel])
            )
        worker.process.join(timeout=1.0)
        error = WorkerCrashed(
            f"worker {worker.slot} "
            f"(pid {worker.info.get('pid', worker.process.pid)}) died with "
            f"exit code {worker.process.exitcode} while the request was in "
            f"flight; the supervisor is restarting it — a retry is safe"
        )
        for future in pending:
            if not future.done():
                future.set_exception(error)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass
        if self._stopping.is_set():
            return
        uptime = time.monotonic() - worker.started_at
        if uptime < 1.0:
            # Crash loop (e.g. a poisoned engine): back off exponentially
            # instead of fork-bombing; a worker that survived >= 1s
            # resets the penalty.
            self._fast_crashes = min(self._fast_crashes + 1, 6)
            self._stopping.wait(min(0.05 * 2 ** self._fast_crashes, 2.0))
        else:
            self._fast_crashes = 0
        if self._stopping.is_set():
            return
        self._restarts[worker.slot] += 1
        self._spawn(worker.slot)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def route_for(self, request: MACRequest) -> int:
        """The affinity slot of a request: stable hash of its core key.

        ``(Q, k, t)`` is the prefix every stage-cache key extends, so
        all requests sharing prepared state share a slot — their
        worker's LRU caches stay hot.
        """
        return zlib.crc32(repr(request.core_key).encode()) % self.num_workers

    def _choose(self, request: MACRequest) -> _Worker:
        affinity = self.route_for(request)
        with self._lock:
            alive = [
                w for w in self._workers if w is not None and w.alive
            ]
            if not alive:
                raise WorkerCrashed(
                    f"all {self.num_workers} worker process(es) are down; "
                    f"the supervisor is restarting them — retry shortly"
                )
            least = min(alive, key=lambda w: (w.depth, w.slot))
            target = self._workers[affinity]
            if target is None or not target.alive:
                self._dispatched["failover"] += 1
                return least
            if (
                target.depth >= self.spill_depth
                and least.depth < target.depth
            ):
                self._dispatched["spill"] += 1
                return least
            self._dispatched["affinity"] += 1
            return target

    def _submit(self, worker: _Worker, op: str, payload) -> Future:
        req_id = next(self._req_ids)
        future: Future = Future()
        with self._lock:
            if not worker.alive:
                raise _PipeDied()
            worker.pending[req_id] = future
        try:
            with worker.send_lock:
                worker.conn.send((req_id, op, payload))
        except (OSError, ValueError) as exc:
            # The pipe died under us: handle the crash immediately
            # instead of waiting for the supervisor's sentinel pass.
            with self._lock:
                worker.pending.pop(req_id, None)
            self._on_death(worker)
            raise _PipeDied() from exc
        return future

    def _dispatch(self, op: str, payload, request: MACRequest) -> Future:
        for _ in range(self.num_workers + 1):
            worker = self._choose(request)
            try:
                return self._submit(worker, op, payload)
            except _PipeDied:
                continue  # that worker just died; route around it
        raise WorkerCrashed(
            f"could not dispatch to any of {self.num_workers} worker "
            f"process(es); the supervisor is restarting them"
        )

    def submit_op(self, slot: int, op: str, payload=None) -> Future:
        """Send a raw op to one specific worker (introspection surface).

        ``telemetry``/``ping`` are the production users; ``sleep`` and
        ``exit`` exist for supervision tests and benchmarks.  Searches
        go through :meth:`search_wire`, which routes by affinity.
        """
        with self._lock:
            worker = self._workers[slot]
            if worker is None or not worker.alive:
                raise WorkerCrashed(f"worker {slot} is not running")
        try:
            return self._submit(worker, op, payload)
        except _PipeDied as exc:
            raise WorkerCrashed(
                f"worker {slot} died while accepting {op!r}"
            ) from exc

    # ------------------------------------------------------------------
    # the executor surface
    # ------------------------------------------------------------------
    def search_wire(self, request: MACRequest) -> dict:
        """Run one search on the tier; returns the result in wire form.

        Blocks until the routed worker answers.  If that worker dies
        first, raises the typed :class:`WorkerCrashed` the supervisor
        set — never hangs on a dead process.
        """
        future = self._dispatch(
            "search", (request, time.monotonic()), request
        )
        return future.result()

    def explain_wire(self, request: MACRequest) -> dict:
        """Resolve a plan on the request's affinity worker (wire form)."""
        return self._dispatch("explain", request, request).result()

    def telemetry_wire(self, timeout: float = 1.0) -> dict:
        """Merged engine telemetry across the fleet, in wire form.

        Polls every live worker concurrently; one that is busy past
        ``timeout`` (or mid-restart) contributes its last collected
        snapshot instead, so metrics stay responsive under load.  Dead
        workers' final snapshots stay folded in (counters are totals
        for the tier's lifetime, not just the current processes).
        """
        with self._lock:
            workers = [
                w for w in self._workers if w is not None and w.alive
            ]
        futures: dict[int, Future] = {}
        for worker in workers:
            try:
                futures[worker.slot] = self._submit(
                    worker, "telemetry", None
                )
            except _PipeDied:
                continue
        deadline = time.monotonic() + timeout
        for slot, future in futures.items():
            remaining = max(0.0, deadline - time.monotonic())
            try:
                self._last_tel[slot] = future.result(timeout=remaining)
            except Exception:
                pass  # busy or just crashed: merge its last snapshot
        snapshots = [
            telemetry_from_wire(t) for t in self._last_tel.values()
        ]
        if self._retired_tel is not None:
            snapshots.append(self._retired_tel)
        return telemetry_to_wire(merge_telemetry(snapshots))

    def workers_wire(self) -> dict:
        """Liveness summary for ``/v1/healthz``: who is up, who restarted."""
        with self._lock:
            entries = []
            alive = 0
            for slot, worker in enumerate(self._workers):
                up = worker is not None and worker.alive
                alive += 1 if up else 0
                entries.append({
                    "worker": slot,
                    "alive": up,
                    "pid": worker.info.get("pid") if worker else None,
                    "restarts": self._restarts[slot],
                    "fingerprint": (
                        worker.info.get("fingerprint") if worker else None
                    ),
                })
            return {
                "alive": alive,
                "total": self.num_workers,
                "restarts": sum(self._restarts),
                "workers": entries,
            }

    def pool_wire(self) -> dict:
        """Dispatch + per-worker serving stats for ``/v1/metrics``."""
        now = time.monotonic()
        with self._lock:
            entries = []
            for slot, worker in enumerate(self._workers):
                if worker is None:
                    entries.append({
                        "worker": slot, "alive": False,
                        "restarts": self._restarts[slot],
                    })
                    continue
                uptime = max(now - worker.started_at, 1e-9)
                entries.append({
                    "worker": slot,
                    "alive": worker.alive,
                    "pid": worker.info.get("pid"),
                    "restarts": self._restarts[slot],
                    "queue_depth": worker.depth,
                    "served": worker.served,
                    "qps": worker.served / uptime,
                    "uptime_s": uptime,
                })
            return {
                "num_workers": self.num_workers,
                "spill_depth": self.spill_depth,
                "restarts": sum(self._restarts),
                "crashed_requests": self._crashed_requests,
                "dispatched": dict(self._dispatched),
                "workers": entries,
            }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        w = self.workers_wire()
        return (
            f"WorkerPool(workers={w['alive']}/{w['total']}, "
            f"restarts={w['restarts']})"
        )
