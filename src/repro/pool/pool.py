"""`WorkerPool`: dispatcher + supervisor over N forked engine processes.

The parent loads (or is handed) one warm :class:`~repro.engine.MACEngine`
and forks ``num_workers`` children from it.  Fork gives copy-on-write
sharing of everything the engine already built — G-tree matrices, CSR
views, coreness arrays, warmed stage caches — so N workers do not pay
N× memory; snapshot payloads loaded with ``mmap=True`` are additionally
file-backed and page-shared.  The parent engine is never queried in
pool mode (its locks are free at every fork, which is what makes
restart-time forking from a threaded parent safe).

**Affinity dispatch.**  A request's affinity worker is a stable hash of
its ``(Q, k, t)`` stage-cache prefix, so repeats and siblings of a query
land on the worker whose per-process LRU caches already hold their
filter/core/dominance state.  When the affinity target's queue is
``spill_depth`` deep and a strictly shallower worker exists, the request
spills to the least-loaded worker — latency beats cache locality once a
queue forms.  A dead target fails over the same way.

**Supervision.**  A supervisor thread waits on the process sentinels.
When a worker dies (crash, SIGKILL, OOM), only the requests in flight on
that worker fail — typed :class:`~repro.errors.WorkerCrashed` — and a
replacement is forked from the parent engine, with per-slot exponential
backoff if a worker crash-loops at boot.  Requests on other workers are
untouched; the pool never hangs on a dead process.

**Stall watchdog.**  Process sentinels only see *dead* workers; a
*wedged* one (infinite loop, stuck syscall) would silently blackhole
its queue.  With ``stall_timeout`` set, the supervisor tick also checks
every busy worker's time-since-last-reply (clamped to the oldest
request's deadline plus a grace window, so a budgeted request never
waits much past its own budget) and pings idle workers so a wedge is
detected even without traffic.  A worker over budget is declared
stalled, SIGKILLed, and refilled through the normal respawn path; only
its in-flight requests fail, with the typed — and retryable —
:class:`~repro.errors.WorkerStalled`.

**Hedged dispatch.**  Searches are pure, so with ``hedge_after`` set a
search still unanswered after that delay (or, with ``"auto"``, after an
EWMA-derived p95-ish latency) is re-dispatched to a second worker and
the first reply wins — one slow-but-alive worker no longer sets the
tail latency.  ``hedges`` / ``hedge_wins`` / ``hedge_discarded``
counters ride in :meth:`pool_wire`.

**Zero-downtime operations.**  :meth:`swap` forks a full replacement
fleet from a freshly loaded engine on a new snapshot *generation*,
atomically redirects new dispatch to it, and gracefully drains the old
generation (in-flight requests complete; the externally reported
snapshot identity flips only once the drain finishes).  A swap that
fails validation is rolled back with a typed
:class:`~repro.errors.ReloadError` and the serving fleet untouched.
:meth:`resize` grows or shrinks the fleet the same way, draining
retired slots.  Both are exercised under deterministic chaos via
:class:`~repro.pool.faults.FaultPlan`.

**Live mutations.**  :meth:`mutate_wire` applies one
:mod:`repro.live` batch fleet-wide without a swap: the parent engine
is mutated first (so validation failures touch nothing and every
future respawn forks consistent state), then the batch is broadcast to
every live worker over the same FIFO pipes as queries — a worker
serves every query it received before the batch against pre-mutation
state and everything after against post-mutation state, so answers are
always internally consistent.  Each worker proves convergence by
returning its recomputed network fingerprint; a worker that failed the
batch or diverged is killed and respawned from the mutated parent
rather than ever serving stale answers.
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
import time
import warnings
import zlib
from concurrent.futures import FIRST_COMPLETED, Future
from concurrent.futures import TimeoutError as _FutureTimeout
from concurrent.futures import wait as _future_wait
from multiprocessing.connection import wait as _sentinel_wait

from repro.engine import merge_telemetry
from repro.engine.request import MACRequest
from repro.errors import ReloadError, ServiceError, WorkerCrashed, WorkerStalled
from repro.pool.faults import FaultPlan
from repro.pool.worker import worker_main
from repro.service.protocol import (
    error_from_wire,
    telemetry_from_wire,
    telemetry_to_wire,
)
from repro.store.fingerprint import network_fingerprint

_MAX_FAST_CRASHES = 6

#: Grace added on top of a request's deadline when it clamps the stall
#: watchdog budget: an anytime search legitimately runs right up to its
#: deadline before replying partial, so the watchdog must not beat it.
_STALL_GRACE = 1.0


def _backoff_delay(fast_crashes: int) -> float:
    """Supervisor restart backoff: 0.1s, 0.2s, ... capped at 2.0s."""
    return min(0.05 * 2**fast_crashes, 2.0)


class _PipeDied(Exception):
    """Internal: a send failed because the worker's pipe is gone."""


class _Worker:
    """Parent-side state of one worker process.

    A worker belongs to a snapshot *generation* (bumped by every live
    swap) and is one *incarnation* of its slot (bumped by every fork
    into that slot).  ``retired`` flips when the worker leaves the
    dispatchable fleet (swap or shrink) and is thereafter only drained.
    """

    def __init__(
        self, slot: int, process, conn, generation: int, incarnation: int
    ) -> None:
        self.slot = slot
        self.process = process
        self.conn = conn
        self.generation = generation
        self.incarnation = incarnation
        self.send_lock = threading.Lock()
        self.pending: dict[int, Future] = {}
        # req_id -> (op, watchdog budget or None, sent_at); parallel to
        # ``pending`` and maintained under the pool lock.
        self.op_meta: dict[int, tuple[str, float | None, float]] = {}
        self.ready = threading.Event()
        self.info: dict = {}
        self.alive = True
        self.retired = False
        self.stalled = False  # wedged per the watchdog; being killed
        self.busy_since: float | None = None  # first unanswered send
        self.last_tel: dict | None = None
        self.started_at = time.monotonic()
        self.last_ping = self.started_at
        self.served = 0
        self.receiver: threading.Thread | None = None

    @property
    def depth(self) -> int:
        return len(self.pending)


class WorkerPool:
    """A supervised tier of ``num_workers`` engine processes.

    Parameters
    ----------
    engine:
        The warm parent engine every worker is forked from.  In pool
        mode the parent must not run searches on it — it exists to be
        forked (copy-on-write) at start and on every restart.
    num_workers:
        Worker processes (slots).  Slots are stable across restarts, so
        affinity routing survives a crash.  :meth:`resize` changes the
        count at runtime.
    spill_depth:
        In-flight requests on the affinity worker before new arrivals
        spill to the least-loaded worker.
    start_timeout:
        Seconds to wait for every worker's ready handshake in
        :meth:`start` (and for a replacement generation in
        :meth:`swap` / :meth:`resize`).
    drain_timeout:
        Default seconds a retiring worker gets to finish its in-flight
        requests before it is terminated (its leftovers fail typed).
    stall_timeout:
        Seconds a busy worker may go without replying before the
        watchdog declares it wedged and SIGKILLs it (in-flight requests
        fail with the retryable :class:`WorkerStalled`).  Clamped per
        request to its deadline plus a grace window.  ``None`` (the
        default) disables the watchdog.
    hedge_after:
        Seconds an in-flight search may go unanswered before it is
        re-dispatched to a second worker, first reply wins; ``"auto"``
        derives the delay from the reply-latency EWMA (mean + 3
        deviations, a p95-ish cutoff).  ``None`` (the default) disables
        hedging.  Searches are pure, so the duplicate is safe.
    fault_plan:
        Deterministic chaos hooks (:class:`FaultPlan`); defaults to the
        plan injected via ``REPRO_FAULT_PLAN`` (inert when unset).
    source / index_digest:
        Operator-facing identity of the snapshot the engine was loaded
        from, reported by :meth:`snapshot_wire` and flipped atomically
        by :meth:`swap`.
    """

    def __init__(
        self,
        engine,
        num_workers: int,
        *,
        spill_depth: int = 4,
        start_timeout: float = 120.0,
        drain_timeout: float = 5.0,
        stall_timeout: float | None = None,
        hedge_after: float | str | None = None,
        fault_plan: FaultPlan | None = None,
        source: str | None = None,
        index_digest: str | None = None,
    ) -> None:
        if num_workers < 1:
            raise ServiceError(f"num_workers must be >= 1, got {num_workers}")
        if spill_depth < 1:
            raise ServiceError(f"spill_depth must be >= 1, got {spill_depth}")
        if drain_timeout <= 0:
            raise ServiceError(f"drain_timeout must be > 0, got {drain_timeout}")
        if stall_timeout is not None and stall_timeout <= 0:
            raise ServiceError(
                f"stall_timeout must be > 0 (or None to disable the "
                f"watchdog), got {stall_timeout}"
            )
        if isinstance(hedge_after, str):
            if hedge_after != "auto":
                raise ServiceError(
                    f"hedge_after must be seconds > 0, 'auto', or None, "
                    f"got {hedge_after!r}"
                )
        elif hedge_after is not None and hedge_after <= 0:
            raise ServiceError(
                f"hedge_after must be seconds > 0, 'auto', or None, "
                f"got {hedge_after}"
            )
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-unix
            raise ServiceError(
                "the worker tier needs the fork start method (unix only); "
                "serve with --worker-processes 0 (threads) instead"
            ) from exc
        self._engine = engine
        self.num_workers = num_workers
        self.spill_depth = spill_depth
        self.start_timeout = start_timeout
        self.drain_timeout = drain_timeout
        self.stall_timeout = stall_timeout
        self.hedge_after = hedge_after
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan.from_env()
        self._source = source
        self._index_digest = index_digest
        self._engine_fp: str | None = None
        self._generation = 0
        self._active: dict | None = None  # reported identity; flips post-drain
        self._lock = threading.Lock()
        self._admin_lock = threading.Lock()  # serializes swap/resize/mutate
        # Forking a worker while a live mutation is rewriting the parent
        # engine in place would copy a torn half-applied state into the
        # child; this lock makes fork and in-place apply mutually
        # exclusive (held across Process.start() and across the parent
        # apply in mutate_wire).
        self._fork_lock = threading.Lock()
        self._mutations = 0
        self._workers: list[_Worker | None] = [None] * num_workers
        self._retiring: set[_Worker] = set()
        self._req_ids = itertools.count(1)
        self._started = False
        self._stopping = threading.Event()
        self._supervisor: threading.Thread | None = None
        self._restarts = [0] * num_workers
        self._retired_restarts = 0
        self._incarnations = [0] * num_workers
        self._fast_crashes = [0] * num_workers
        self._backoff_until = [0.0] * num_workers
        self._pending_respawn: set[int] = set()
        self._crashed_requests = 0
        self._stalled_workers = 0
        self._hedges = 0
        self._hedge_wins = 0
        self._hedge_discarded = 0
        self._search_ewma: float | None = None  # ok-search reply latency
        self._search_dev = 0.0  # its mean absolute deviation
        self._dispatched = {"affinity": 0, "spill": 0, "failover": 0}
        self._retired_tel = None  # EngineTelemetry of dead/drained workers
        self._started_at = time.monotonic()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str | None:
        """Content fingerprint of the *reported* snapshot generation."""
        return self._active["fingerprint"] if self._active else None

    @property
    def generation(self) -> int:
        """The generation new dispatch goes to (bumped by every swap)."""
        return self._generation

    @property
    def network(self):
        """The parent engine's network (reload paths re-use its object)."""
        return self._engine.network

    def snapshot_wire(self) -> dict:
        """The reported snapshot identity: fingerprint + generation +
        provenance.  Flips atomically when a swap's drain completes —
        an observer never sees a half-flipped identity."""
        if self._active is None:
            return {
                "fingerprint": None,
                "generation": 0,
                "source": self._source,
                "index_digest": self._index_digest,
                "delta_seq": getattr(self._engine, "delta_seq", 0),
            }
        return dict(self._active)

    def start(self) -> WorkerPool:
        """Fork the workers, wait for their ready handshakes, supervise."""
        if self._started:
            raise ServiceError("worker pool already started")
        self._started = True
        self._started_at = time.monotonic()
        self._engine_fp = network_fingerprint(self._engine.network)
        for slot in range(self.num_workers):
            self._spawn(slot)
        try:
            self._await_ready(
                [w for w in self._workers if w is not None], self.start_timeout
            )
        except ServiceError:
            self.stop()
            raise
        self._active = {
            "fingerprint": self._engine_fp,
            "generation": 0,
            "source": self._source,
            "index_digest": self._index_digest,
            "delta_seq": getattr(self._engine, "delta_seq", 0),
        }
        self._supervisor = threading.Thread(
            target=self._supervise, name="mac-pool-supervisor", daemon=True
        )
        self._supervisor.start()
        return self

    def _fork(
        self, slot: int, engine, fingerprint: str, generation: int, incarnation: int
    ) -> _Worker:
        """Fork one worker process; the caller decides where it lives."""
        parent_conn, child_conn = self._ctx.Pipe()
        with self._fork_lock, warnings.catch_warnings():
            # Python 3.12+ warns on fork() from a multi-threaded
            # process.  Safe here by construction: the child touches
            # only the pre-fork engine — whose locks the parent is not
            # holding, because the parent never searches in pool mode
            # (and ``_fork_lock`` keeps a live mutation from rewriting
            # it mid-fork) — and its own pipe end.
            warnings.simplefilter("ignore", DeprecationWarning)
            process = self._ctx.Process(
                target=worker_main,
                args=(
                    slot,
                    child_conn,
                    engine,
                    fingerprint,
                    generation,
                    incarnation,
                    self.fault_plan if self.fault_plan else None,
                ),
                name=f"mac-pool-worker-{slot}",
                daemon=True,
            )
            process.start()
        child_conn.close()
        worker = _Worker(slot, process, parent_conn, generation, incarnation)
        worker.receiver = threading.Thread(
            target=self._receive,
            args=(worker,),
            name=f"mac-pool-recv-{slot}",
            daemon=True,
        )
        worker.receiver.start()
        return worker

    def _spawn(self, slot: int) -> None:
        """Fork a worker of the *current* generation into a fleet slot."""
        with self._lock:
            engine = self._engine
            fingerprint = self._engine_fp
            generation = self._generation
            incarnation = self._incarnations[slot]
            self._incarnations[slot] += 1
        worker = self._fork(slot, engine, fingerprint, generation, incarnation)
        with self._lock:
            stale = (
                self._stopping.is_set()
                or slot >= self.num_workers
                or (
                    self._workers[slot] is not None
                    and self._workers[slot].alive
                )
            )
            if not stale:
                self._workers[slot] = worker
        if stale:
            # The slot was filled or retired while we forked (a swap,
            # shrink, or stop raced the respawn): discard quietly.
            self._discard([worker])

    def _await_ready(self, workers: list[_Worker], timeout: float) -> None:
        """Wait for ready handshakes, failing fast on a dead process."""
        deadline = time.monotonic() + timeout
        for worker in workers:
            while not worker.ready.wait(timeout=0.05):
                if not worker.process.is_alive():
                    raise ServiceError(
                        f"worker {worker.slot} (generation "
                        f"{worker.generation}) died during start with exit "
                        f"code {worker.process.exitcode}"
                    )
                if time.monotonic() > deadline:
                    raise ServiceError(
                        f"worker {worker.slot} did not become ready within "
                        f"{timeout:g}s"
                    )

    def _discard(self, workers: list[_Worker]) -> None:
        """Kill workers that never joined the fleet (rollback path)."""
        for worker in workers:
            worker.alive = False
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
            if worker.process.is_alive():
                worker.process.terminate()
        for worker in workers:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():  # pragma: no cover
                worker.process.kill()
                worker.process.join(timeout=1.0)

    def stop(self, timeout: float = 5.0) -> None:
        """Drain and stop every worker; fail leftover in-flight requests.

        Workers serve their queued ops before the stop sentinel (the
        pipe is FIFO), so a normal stop loses nothing; a wedged worker
        is terminated after ``timeout`` and its pending requests fail
        with :class:`WorkerCrashed`.  Idempotent.
        """
        self._stopping.set()
        with self._lock:
            workers = [
                w for w in [*self._workers, *self._retiring] if w is not None
            ]
        self._drain(workers, timeout, reason="was stopped with the pool")
        if self._supervisor is not None:
            self._supervisor.join(timeout=2.0)
            self._supervisor = None

    def __enter__(self) -> WorkerPool:
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # zero-downtime operations
    # ------------------------------------------------------------------
    def swap(
        self,
        engine,
        *,
        source: str | None = None,
        index_digest: str | None = None,
        drain_timeout: float | None = None,
    ) -> dict:
        """Live snapshot swap: replace the fleet with workers forked
        from ``engine``, without dropping a request.

        Stages a full replacement generation first (fork + ready
        handshake); any validation failure rolls back with a typed
        :class:`ReloadError` and the serving fleet untouched.  On
        success, new dispatch flips to the new generation atomically,
        the old generation drains (in-flight requests complete, FIFO
        before the stop sentinel), and only then does the reported
        snapshot identity (:meth:`snapshot_wire`) flip — also
        atomically.
        """
        if not self._started:
            raise ReloadError("cannot swap: the worker pool is not started")
        if not self._admin_lock.acquire(blocking=False):
            raise ReloadError(
                "another admin operation (swap or resize) is in progress; "
                "retry when it completes"
            )
        try:
            return self._swap_locked(engine, source, index_digest, drain_timeout)
        finally:
            self._admin_lock.release()

    def _swap_locked(self, engine, source, index_digest, drain_timeout) -> dict:
        started = time.monotonic()
        if self._stopping.is_set():
            raise ReloadError("cannot swap: the worker pool is stopping")
        fingerprint = network_fingerprint(engine.network)
        generation = self._generation + 1
        staged: list[_Worker] = []
        try:
            for slot in range(self.num_workers):
                with self._lock:
                    incarnation = self._incarnations[slot]
                    self._incarnations[slot] += 1
                staged.append(
                    self._fork(slot, engine, fingerprint, generation, incarnation)
                )
            self._await_ready(staged, self.start_timeout)
            if self._stopping.is_set():
                raise ServiceError("the worker pool began stopping mid-swap")
        except Exception as exc:
            self._discard(staged)
            raise ReloadError(
                f"snapshot swap to generation {generation} rolled back "
                f"({len(staged)} staged worker(s) discarded, serving fleet "
                f"untouched): {exc}"
            ) from exc
        # Install: from here on every new dispatch goes to the new
        # generation; the old one only finishes what it already holds.
        with self._lock:
            retired = [w for w in self._workers if w is not None]
            for worker in staged:
                self._workers[worker.slot] = worker
            self._engine = engine
            self._engine_fp = fingerprint
            self._generation = generation
            for worker in retired:
                worker.retired = True
                if worker.alive:
                    self._retiring.add(worker)
        drain = self._drain(
            retired,
            self.drain_timeout if drain_timeout is None else drain_timeout,
            reason="was retired by a live snapshot swap",
        )
        # The reported identity flips only now — after the old
        # generation fully drained — and atomically (one dict swap).
        self._active = {
            "fingerprint": fingerprint,
            "generation": generation,
            "source": source,
            "index_digest": index_digest,
            "delta_seq": getattr(engine, "delta_seq", 0),
        }
        return {
            "generation": generation,
            "fingerprint": fingerprint,
            "source": source,
            "index_digest": index_digest,
            "workers": self.num_workers,
            "drained": drain["drained"],
            "terminated": drain["terminated"],
            "elapsed_s": round(time.monotonic() - started, 3),
        }

    def resize(self, num_workers: int, *, drain_timeout: float | None = None) -> dict:
        """Grow or shrink the fleet at runtime.

        Growing stages the new slots first (ready handshake, rollback on
        failure); shrinking removes the retired slots from dispatch
        immediately, then drains them gracefully — their in-flight
        requests complete.
        """
        if num_workers < 1:
            raise ServiceError(f"num_workers must be >= 1, got {num_workers}")
        if not self._started:
            raise ReloadError("cannot resize: the worker pool is not started")
        if not self._admin_lock.acquire(blocking=False):
            raise ReloadError(
                "another admin operation (swap or resize) is in progress; "
                "retry when it completes"
            )
        try:
            return self._resize_locked(num_workers, drain_timeout)
        finally:
            self._admin_lock.release()

    def _resize_locked(self, num_workers: int, drain_timeout) -> dict:
        started = time.monotonic()
        if self._stopping.is_set():
            raise ReloadError("cannot resize: the worker pool is stopping")
        old_n = self.num_workers
        drain = {"drained": 0, "terminated": 0}
        if num_workers > old_n:
            staged: list[_Worker] = []
            try:
                for slot in range(old_n, num_workers):
                    staged.append(
                        self._fork(
                            slot, self._engine, self._engine_fp, self._generation, 0
                        )
                    )
                self._await_ready(staged, self.start_timeout)
            except Exception as exc:
                self._discard(staged)
                raise ReloadError(
                    f"fleet grow {old_n} -> {num_workers} rolled back "
                    f"(fleet unchanged): {exc}"
                ) from exc
            grow = num_workers - old_n
            with self._lock:
                self._workers.extend(staged)
                self._restarts.extend([0] * grow)
                self._incarnations.extend([1] * grow)
                self._fast_crashes.extend([0] * grow)
                self._backoff_until.extend([0.0] * grow)
                self.num_workers = num_workers
        elif num_workers < old_n:
            with self._lock:
                retired = [
                    w for w in self._workers[num_workers:] if w is not None
                ]
                self._retired_restarts += sum(self._restarts[num_workers:])
                self._workers = self._workers[:num_workers]
                self._restarts = self._restarts[:num_workers]
                self._incarnations = self._incarnations[:num_workers]
                self._fast_crashes = self._fast_crashes[:num_workers]
                self._backoff_until = self._backoff_until[:num_workers]
                self._pending_respawn = {
                    s for s in self._pending_respawn if s < num_workers
                }
                self.num_workers = num_workers
                for worker in retired:
                    worker.retired = True
                    if worker.alive:
                        self._retiring.add(worker)
            drain = self._drain(
                retired,
                self.drain_timeout if drain_timeout is None else drain_timeout,
                reason="was retired by a fleet shrink",
            )
        return {
            "workers": num_workers,
            "previous": old_n,
            "grown": max(0, num_workers - old_n),
            "retired": max(0, old_n - num_workers),
            "drained": drain["drained"],
            "terminated": drain["terminated"],
            "elapsed_s": round(time.monotonic() - started, 3),
        }

    def mutate_wire(self, mutations: list) -> dict:
        """Apply one live mutation batch to the whole fleet.

        The batch hits the *parent* engine first — validation failures
        (typed :class:`~repro.errors.MutationError`) happen there,
        before any worker sees the batch, so a rejected batch leaves
        the fleet untouched and future respawns fork consistent state.
        On success the batch is broadcast to every live worker; each
        reply carries the worker's recomputed network fingerprint, and
        any worker that failed the batch or landed on different content
        is SIGKILLed — the supervisor refills its slot by forking the
        already-mutated parent, so divergence is never served.  No
        generation bump: the fleet stays on its snapshot generation,
        with the reported identity's ``fingerprint``/``delta_seq``
        advanced in one atomic flip.
        """
        if not self._started:
            raise ReloadError("cannot mutate: the worker pool is not started")
        if not self._admin_lock.acquire(blocking=False):
            raise ReloadError(
                "another admin operation (swap, resize, or mutate) is in "
                "progress; retry when it completes"
            )
        try:
            return self._mutate_locked(mutations)
        finally:
            self._admin_lock.release()

    def _mutate_locked(self, mutations: list) -> dict:
        started = time.monotonic()
        if self._stopping.is_set():
            raise ReloadError("cannot mutate: the worker pool is stopping")
        with self._fork_lock:
            # Parent first, and atomically with respect to respawn
            # forks: a child must never copy a half-applied engine.
            summary = self._engine.apply(mutations)
        fingerprint = network_fingerprint(self._engine.network)
        with self._lock:
            self._engine_fp = fingerprint
            self._mutations += 1
            workers = [
                w
                for w in self._workers
                if w is not None and w.alive and not w.retired and not w.stalled
            ]
        futures: dict[_Worker, Future] = {}
        for worker in workers:
            try:
                futures[worker] = self._submit(worker, "mutate", mutations)
            except _PipeDied:
                continue
        divergent: list[_Worker] = []
        applied_workers = 0
        deadline = time.monotonic() + self.start_timeout
        for worker, future in futures.items():
            remaining = max(0.1, deadline - time.monotonic())
            try:
                reply = future.result(timeout=remaining)
            except Exception:
                # Typed apply failure, crash, or a wedged pipe: this
                # worker's state can no longer be trusted to match.
                divergent.append(worker)
                continue
            if reply.get("fingerprint") != fingerprint:
                divergent.append(worker)
                continue
            applied_workers += 1
            with self._lock:
                # Keep the per-worker identity in /v1/healthz honest:
                # this worker now serves the mutated content.
                worker.info["fingerprint"] = fingerprint
        for worker in divergent:
            # SIGKILL, never serve from divergence: the sentinel path
            # fails its in-flight requests typed and the supervisor
            # refills the slot from the mutated parent engine.
            if worker.alive and worker.process.is_alive():
                worker.process.kill()
        if self._active is not None:
            active = dict(self._active)
            active["fingerprint"] = fingerprint
            active["delta_seq"] = summary["delta_seq"]
            self._active = active
        return {
            **summary,
            "fingerprint": fingerprint,
            "workers": len(workers),
            "applied_workers": applied_workers,
            "respawned": len(divergent),
            "uniform": not divergent,
            "elapsed_s": round(time.monotonic() - started, 3),
        }

    def _drain(self, workers: list[_Worker], timeout: float, *, reason: str) -> dict:
        """Gracefully retire workers: final telemetry poll, stop
        sentinel, bounded join, terminate stragglers, finalize.

        The telemetry poll is submitted *before* the sentinel, so the
        FIFO pipe guarantees it reflects every request the worker ever
        served; it becomes the worker's folded contribution to the
        merged fleet counters (telemetry stays monotone across
        generations).
        """
        workers = [w for w in workers if w is not None]
        tel_futures: dict[_Worker, Future] = {}
        for worker in workers:
            if not worker.alive or worker.stalled:
                # A stalled worker is not reading its pipe; its last
                # collected snapshot stands.
                continue
            try:
                tel_futures[worker] = self._submit(
                    worker, "telemetry", None, allow_retired=True
                )
            except _PipeDied:
                continue
        for worker in workers:
            if not worker.alive:
                continue
            try:
                with worker.send_lock:
                    worker.conn.send(None)
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + timeout
        for worker, future in tel_futures.items():
            remaining = max(0.0, deadline - time.monotonic())
            try:
                tel = future.result(timeout=remaining)
            except Exception:
                continue  # crashed or wedged: its last snapshot stands
            with self._lock:
                if worker.alive:
                    worker.last_tel = tel
        drained = terminated = 0
        for worker in workers:
            worker.process.join(timeout=max(0.1, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
                if worker.process.is_alive():  # pragma: no cover
                    worker.process.kill()
                    worker.process.join(timeout=1.0)
                terminated += 1
            else:
                drained += 1
            if worker.receiver is not None:
                # Let the receive thread drain any replies still
                # buffered in the dead worker's pipe (it exits on EOF)
                # before failing what genuinely never answered.
                worker.receiver.join(timeout=1.0)
            self._finalize(
                worker,
                WorkerCrashed(
                    f"worker {worker.slot} {reason} with this request still "
                    f"in flight; a retry is safe"
                ),
            )
        return {"drained": drained, "terminated": terminated}

    def _finalize(self, worker: _Worker, error: WorkerCrashed) -> bool:
        """Idempotently mark a worker dead: fail its pending requests
        with ``error``, fold its last telemetry into the retired
        totals, close its pipe.  Returns whether it still held a fleet
        slot (i.e. whether the caller should consider a respawn)."""
        with self._lock:
            if not worker.alive:
                return False
            worker.alive = False
            pending = list(worker.pending.values())
            worker.pending.clear()
            worker.op_meta.clear()
            worker.busy_since = None
            self._retiring.discard(worker)
            in_slot = (
                worker.slot < len(self._workers)
                and self._workers[worker.slot] is worker
            )
            if pending:
                self._crashed_requests += len(pending)
            last_tel = worker.last_tel
            worker.last_tel = None
            if last_tel is not None:
                # Keep the worker's last-seen counters in the merged
                # fleet telemetry so restarts and swaps never march
                # totals backwards.  Folded under the lock so a
                # concurrent telemetry_wire never misses the hand-off.
                tel = telemetry_from_wire(last_tel)
                self._retired_tel = (
                    tel
                    if self._retired_tel is None
                    else merge_telemetry([self._retired_tel, tel])
                )
        for future in pending:
            if not future.done():
                future.set_exception(error)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass
        return in_slot

    # ------------------------------------------------------------------
    # receive / supervise
    # ------------------------------------------------------------------
    def _receive(self, worker: _Worker) -> None:
        while True:
            try:
                message = worker.conn.recv()
            except (EOFError, OSError):
                return  # worker exited, or the pool closed the pipe
            except TypeError:
                # The pipe handle was closed mid-recv (finalize racing
                # this thread): same meaning as the OSError path.
                return
            if message[0] == "__ready__":
                worker.info = message[1]
                worker.ready.set()
                continue
            req_id, ok, payload = message
            now = time.monotonic()
            with self._lock:
                future = worker.pending.pop(req_id, None)
                meta = worker.op_meta.pop(req_id, None)
                worker.served += 1
                # Any reply proves liveness: the watchdog clock restarts
                # (or stops, if the queue just went idle).
                worker.busy_since = now if worker.pending else None
                if ok and meta is not None and meta[0] == "telemetry":
                    # Recorded here (not just by the poller waiting on
                    # the future) so a worker that answers its final
                    # drain poll and exits has the fresh counters on it
                    # by the time the post-receiver-join finalize folds
                    # them — however the poller/supervisor race lands.
                    worker.last_tel = payload
                if ok and meta is not None and meta[0] == "search":
                    elapsed = now - meta[2]
                    if self._search_ewma is None:
                        self._search_ewma = elapsed
                    else:
                        self._search_dev += 0.2 * (
                            abs(elapsed - self._search_ewma) - self._search_dev
                        )
                        self._search_ewma += 0.2 * (elapsed - self._search_ewma)
            if future is None:
                continue  # abandoned (e.g. a timed-out telemetry poll)
            if ok:
                future.set_result(payload)
            else:
                future.set_exception(error_from_wire(payload))

    def _supervise(self) -> None:
        while not self._stopping.is_set():
            self._respawn_due()
            if self.stall_timeout is not None:
                self._watchdog_check()
                self._heartbeat()
            with self._lock:
                sentinels = {
                    w.process.sentinel: w
                    for w in [*self._workers, *self._retiring]
                    if w is not None and w.alive
                }
            if not sentinels:
                self._stopping.wait(0.1)
                continue
            for sentinel in _sentinel_wait(list(sentinels), timeout=0.1):
                self._on_death(sentinels[sentinel])

    def _watchdog_check(self) -> None:
        """SIGKILL workers that have been busy past their stall budget.

        Runs on the supervisor tick.  A worker is wedged when its
        oldest unanswered op has waited longer than its watchdog budget
        (``stall_timeout``, deadline-clamped at submit time) since the
        worker last replied anything.  SIGKILL is the only lever that
        works on a process stuck in an infinite loop or a syscall; the
        process sentinel then fires :meth:`_on_death`, which fails the
        in-flight requests with :class:`WorkerStalled` and refills the
        slot through the normal respawn path.
        """
        now = time.monotonic()
        victims: list[_Worker] = []
        with self._lock:
            for worker in [*self._workers, *self._retiring]:
                if (
                    worker is None
                    or not worker.alive
                    or worker.stalled
                    or worker.busy_since is None
                ):
                    continue
                oldest = next(iter(worker.pending), None)
                meta = worker.op_meta.get(oldest) if oldest is not None else None
                budget = self.stall_timeout
                if meta is not None and meta[1] is not None:
                    budget = meta[1]
                if now - worker.busy_since > budget:
                    worker.stalled = True
                    self._stalled_workers += 1
                    victims.append(worker)
        for worker in victims:
            worker.process.kill()

    def _heartbeat(self) -> None:
        """Ping idle workers so a wedge is detected without traffic.

        The ping is just another op with the full ``stall_timeout``
        budget: a worker that wedged while its queue was empty (or that
        swallows the ping itself) accrues an unanswered op, and the
        watchdog catches it on a later tick.  Replies are abandoned —
        :meth:`_receive` pops them and resets the busy clock.
        """
        now = time.monotonic()
        with self._lock:
            idle = [
                w
                for w in self._workers
                if w is not None
                and w.alive
                and not w.retired
                and not w.stalled
                and not w.pending
                and now - w.last_ping >= self.stall_timeout / 2
            ]
            for worker in idle:
                worker.last_ping = now
        for worker in idle:
            try:
                self._submit(worker, "ping", None)
            except _PipeDied:
                pass

    def _on_death(self, worker: _Worker) -> None:
        """Fail the dead worker's in-flight requests; schedule a
        replacement fork (with crash-loop backoff) if it held a slot."""
        worker.process.join(timeout=1.0)
        # The sentinel can fire before the receive thread has drained
        # the pipe: a worker that replied and exited cleanly may still
        # look "in flight" here.  The dead process's pipe end is closed,
        # so the receiver is guaranteed to consume every buffered reply
        # and hit EOF — wait for it so delivered results beat the
        # synthetic crash error.
        if worker.receiver is not None:
            worker.receiver.join(timeout=1.0)
        pid = worker.info.get("pid", worker.process.pid)
        if worker.stalled:
            error = WorkerStalled(
                f"worker {worker.slot} (pid {pid}) stopped replying for "
                f"longer than its stall budget and was killed by the "
                f"watchdog with this request in flight; the supervisor is "
                f"refilling the slot — a retry is safe"
            )
        elif worker.retired:
            error = WorkerCrashed(
                f"worker {worker.slot} (pid {pid}) died with exit code "
                f"{worker.process.exitcode} while draining with this "
                f"request in flight; a retry is safe"
            )
        else:
            error = WorkerCrashed(
                f"worker {worker.slot} (pid {pid}) died with exit code "
                f"{worker.process.exitcode} while the request was in "
                f"flight; the supervisor is restarting it — a retry is safe"
            )
        in_slot = self._finalize(worker, error)
        if not in_slot or worker.retired or self._stopping.is_set():
            return
        slot = worker.slot
        now = time.monotonic()
        uptime = now - worker.started_at
        with self._lock:
            if slot >= self.num_workers:  # pragma: no cover - shrink raced us
                return
            if uptime < 1.0:
                # Crash loop (e.g. a poisoned engine): back off
                # exponentially instead of fork-bombing; a worker that
                # survived >= 1s resets the penalty.
                self._fast_crashes[slot] = min(
                    self._fast_crashes[slot] + 1, _MAX_FAST_CRASHES
                )
                delay = _backoff_delay(self._fast_crashes[slot])
            else:
                self._fast_crashes[slot] = 0
                delay = 0.0
            self._backoff_until[slot] = now + delay
            self._restarts[slot] += 1
            self._pending_respawn.add(slot)
        self._respawn_due()

    def _respawn_due(self) -> None:
        """Fork replacements for slots whose backoff window has passed."""
        if self._stopping.is_set():
            return
        now = time.monotonic()
        due: list[int] = []
        with self._lock:
            for slot in sorted(self._pending_respawn):
                if slot >= self.num_workers:
                    self._pending_respawn.discard(slot)
                elif self._backoff_until[slot] <= now:
                    self._pending_respawn.discard(slot)
                    due.append(slot)
        for slot in due:
            self._spawn(slot)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def route_for(self, request: MACRequest) -> int:
        """The affinity slot of a request: stable hash of its core key.

        ``(Q, k, t)`` is the prefix every stage-cache key extends, so
        all requests sharing prepared state share a slot — their
        worker's LRU caches stay hot.
        """
        return zlib.crc32(repr(request.core_key).encode()) % self.num_workers

    def _choose(self, request: MACRequest) -> _Worker:
        affinity = self.route_for(request)
        with self._lock:
            alive = [
                w
                for w in self._workers
                if w is not None and w.alive and not w.stalled
            ]
            if not alive:
                raise WorkerCrashed(
                    f"all {self.num_workers} worker process(es) are down; "
                    f"the supervisor is restarting them — retry shortly"
                )
            least = min(alive, key=lambda w: (w.depth, w.slot))
            target = (
                self._workers[affinity]
                if affinity < len(self._workers)
                else None
            )
            if target is None or not target.alive or target.stalled:
                self._dispatched["failover"] += 1
                return least
            if target.depth >= self.spill_depth and least.depth < target.depth:
                self._dispatched["spill"] += 1
                return least
            self._dispatched["affinity"] += 1
            return target

    def _submit(
        self, worker: _Worker, op: str, payload, *, allow_retired: bool = False
    ) -> Future:
        req_id = next(self._req_ids)
        future: Future = Future()
        budget = self.stall_timeout
        if budget is not None and op == "search":
            deadline = payload[0].deadline
            if deadline is not None:
                # A budgeted request must not wait for the full watchdog
                # window: clamp to its own deadline (plus grace for the
                # anytime path, which replies partial *at* the deadline).
                budget = min(budget, deadline + _STALL_GRACE)
        with self._lock:
            if not worker.alive:
                raise _PipeDied()
            worker.pending[req_id] = future
            worker.op_meta[req_id] = (op, budget, time.monotonic())
            if worker.busy_since is None:
                worker.busy_since = time.monotonic()
        died = stale = False
        with worker.send_lock:
            # Re-checked under the send lock: a worker retired by a
            # concurrent swap/shrink gets its stop sentinel under this
            # same lock, so an op observed as non-retired here is
            # guaranteed to be sent before the sentinel (FIFO: it will
            # be served, not silently dropped).
            if not worker.alive or (worker.retired and not allow_retired):
                stale = True
            else:
                try:
                    worker.conn.send((req_id, op, payload))
                except (OSError, ValueError):
                    died = True
        if stale or died:
            with self._lock:
                worker.pending.pop(req_id, None)
                worker.op_meta.pop(req_id, None)
                if not worker.pending:
                    worker.busy_since = None
            if died:
                # The pipe died under us: handle the crash immediately
                # instead of waiting for the supervisor's sentinel pass.
                self._on_death(worker)
            raise _PipeDied()
        return future

    def _dispatch(self, op: str, payload, request: MACRequest):
        """Route + submit; returns ``(future, worker)`` for hedging."""
        for _ in range(self.num_workers + 1):
            worker = self._choose(request)
            try:
                return self._submit(worker, op, payload), worker
            except _PipeDied:
                continue  # that worker just died or retired; re-route
        raise WorkerCrashed(
            f"could not dispatch to any of {self.num_workers} worker "
            f"process(es); the supervisor is restarting them"
        )

    def submit_op(self, slot: int, op: str, payload=None) -> Future:
        """Send a raw op to one specific worker (introspection surface).

        ``telemetry``/``ping`` are the production users; ``sleep`` and
        ``exit`` exist for supervision tests and benchmarks.  Searches
        go through :meth:`search_wire`, which routes by affinity.
        """
        with self._lock:
            worker = (
                self._workers[slot] if 0 <= slot < len(self._workers) else None
            )
            if worker is None or not worker.alive:
                raise WorkerCrashed(f"worker {slot} is not running")
        try:
            return self._submit(worker, op, payload)
        except _PipeDied as exc:
            raise WorkerCrashed(
                f"worker {slot} died while accepting {op!r}"
            ) from exc

    # ------------------------------------------------------------------
    # the executor surface
    # ------------------------------------------------------------------
    def _hedge_delay(self) -> float | None:
        """Seconds before an unanswered search is hedged, or ``None``.

        ``"auto"`` derives the delay from the reply-latency EWMA (mean
        plus three mean-absolute-deviations — a p95-ish cutoff) and
        stays disabled until the first sample lands.
        """
        if self.hedge_after is None:
            return None
        if self.hedge_after == "auto":
            with self._lock:
                if self._search_ewma is None:
                    return None
                return max(0.005, self._search_ewma + 3.0 * self._search_dev)
        return self.hedge_after

    def _hedge_submit(self, payload, primary: _Worker) -> Future | None:
        """Re-dispatch a slow search to the least-loaded other worker.

        Returns ``None`` when no second worker is available (single
        slot, everyone else dead/retiring/stalled) — the caller then
        just keeps waiting on the primary.
        """
        with self._lock:
            candidates = [
                w
                for w in self._workers
                if w is not None
                and w.alive
                and not w.retired
                and not w.stalled
                and w is not primary
            ]
            if not candidates:
                return None
            worker = min(candidates, key=lambda w: (w.depth, w.slot))
        try:
            future = self._submit(worker, "search", payload)
        except _PipeDied:
            return None
        with self._lock:
            self._hedges += 1
        return future

    def search_wire(self, request: MACRequest) -> dict:
        """Run one search on the tier; returns the result in wire form.

        Blocks until the routed worker answers.  If that worker dies
        first, raises the typed :class:`WorkerCrashed` the supervisor
        set — never hangs on a dead process.  With hedging enabled, a
        search unanswered after the hedge delay is re-sent (same
        payload, same submit timestamp, so worker-side queue-wait
        charging stays honest) to a second worker and the first
        successful reply wins; the loser's reply is discarded.
        """
        payload = (request, time.monotonic())
        future, primary = self._dispatch("search", payload, request)
        delay = self._hedge_delay()
        if delay is None:
            return future.result()
        try:
            return future.result(timeout=delay)
        except _FutureTimeout:
            pass
        hedge = self._hedge_submit(payload, primary)
        if hedge is None:
            return future.result()
        pair = {future: "primary", hedge: "hedge"}
        remaining = dict(pair)
        while remaining:
            done, _ = _future_wait(list(remaining), return_when=FIRST_COMPLETED)
            for finished in done:
                remaining.pop(finished, None)
            winner = next(
                (f for f in done if f.exception() is None), None
            )
            if winner is not None:
                with self._lock:
                    if pair[winner] == "hedge":
                        self._hedge_wins += 1
                    if remaining:
                        # The loser is still in flight; its eventual
                        # reply is dropped by design (searches are pure).
                        self._hedge_discarded += 1
                return winner.result()
        # Both attempts failed: surface the primary's error.
        return future.result()

    def explain_wire(self, request: MACRequest) -> dict:
        """Resolve a plan on the request's affinity worker (wire form)."""
        return self._dispatch("explain", request, request)[0].result()

    def telemetry_wire(self, timeout: float = 1.0) -> dict:
        """Merged engine telemetry across the fleet, in wire form.

        Polls every live worker concurrently — including retiring ones
        still draining a swap or shrink; one that is busy past
        ``timeout`` (or mid-restart) contributes its last collected
        snapshot instead, so metrics stay responsive under load.  Dead
        and drained workers' final snapshots stay folded in (counters
        are totals for the tier's lifetime across generations, not just
        the current processes).
        """
        with self._lock:
            workers = [
                w
                for w in [*self._workers, *self._retiring]
                # A stalled worker would never answer the poll: skip it
                # (its last snapshot is merged below) so the endpoint
                # degrades instead of burning the whole timeout.
                if w is not None and w.alive and not w.stalled
            ]
        futures: dict[_Worker, Future] = {}
        for worker in workers:
            try:
                futures[worker] = self._submit(
                    worker, "telemetry", None, allow_retired=True
                )
            except _PipeDied:
                continue
        deadline = time.monotonic() + timeout
        for worker, future in futures.items():
            remaining = max(0.0, deadline - time.monotonic())
            try:
                tel = future.result(timeout=remaining)
            except Exception:
                continue  # busy or just crashed: merge its last snapshot
            with self._lock:
                if worker.alive:
                    worker.last_tel = tel
        with self._lock:
            snapshots = [
                telemetry_from_wire(w.last_tel)
                for w in [*self._workers, *self._retiring]
                if w is not None and w.last_tel is not None
            ]
            if self._retired_tel is not None:
                snapshots.append(self._retired_tel)
        return telemetry_to_wire(merge_telemetry(snapshots))

    def workers_wire(self) -> dict:
        """Liveness summary for ``/v1/healthz``: who is up, who restarted."""
        with self._lock:
            entries = []
            alive = 0
            for slot, worker in enumerate(self._workers):
                up = worker is not None and worker.alive
                alive += 1 if up else 0
                entries.append({
                    "worker": slot,
                    "alive": up,
                    "stalled": bool(worker and worker.stalled),
                    "pid": worker.info.get("pid") if worker else None,
                    "restarts": self._restarts[slot],
                    "generation": worker.generation if worker else None,
                    "fingerprint": (
                        worker.info.get("fingerprint") if worker else None
                    ),
                })
            return {
                "alive": alive,
                "total": self.num_workers,
                "restarts": sum(self._restarts) + self._retired_restarts,
                "generation": self._generation,
                "draining": len(self._retiring),
                "stalled_workers": self._stalled_workers,
                "workers": entries,
            }

    def pool_wire(self) -> dict:
        """Dispatch + per-worker serving stats for ``/v1/metrics``."""
        now = time.monotonic()
        with self._lock:
            entries = []
            for slot, worker in enumerate(self._workers):
                backoff = max(0.0, self._backoff_until[slot] - now)
                if worker is None:
                    entries.append({
                        "worker": slot,
                        "alive": False,
                        "stalled": False,
                        "restarts": self._restarts[slot],
                        "crash_loops": self._fast_crashes[slot],
                        "restart_backoff_remaining": backoff,
                    })
                    continue
                uptime = max(now - worker.started_at, 1e-9)
                entries.append({
                    "worker": slot,
                    "alive": worker.alive,
                    "stalled": worker.stalled,
                    "pid": worker.info.get("pid"),
                    "restarts": self._restarts[slot],
                    "generation": worker.generation,
                    "incarnation": worker.incarnation,
                    "crash_loops": self._fast_crashes[slot],
                    "restart_backoff_remaining": backoff,
                    "queue_depth": worker.depth,
                    "served": worker.served,
                    "qps": worker.served / uptime,
                    "uptime_s": uptime,
                })
            return {
                "num_workers": self.num_workers,
                "spill_depth": self.spill_depth,
                "restarts": sum(self._restarts) + self._retired_restarts,
                "generation": self._generation,
                "draining": len(self._retiring),
                "crashed_requests": self._crashed_requests,
                "mutations": self._mutations,
                "stall_timeout": self.stall_timeout,
                "stalled_workers": self._stalled_workers,
                "hedge_after": self.hedge_after,
                "hedges": self._hedges,
                "hedge_wins": self._hedge_wins,
                "hedge_discarded": self._hedge_discarded,
                "dispatched": dict(self._dispatched),
                "fault_plan": self.fault_plan.to_wire(),
                "workers": entries,
            }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        w = self.workers_wire()
        return (
            f"WorkerPool(workers={w['alive']}/{w['total']}, "
            f"generation={w['generation']}, restarts={w['restarts']})"
        )
