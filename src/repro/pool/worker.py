"""The worker-process side of the :mod:`repro.pool` tier.

Each worker is a forked child that inherited the parent's fully-loaded
:class:`~repro.engine.MACEngine` — G-tree, CSR views, warm stage caches
— via copy-on-write memory, with the snapshot's array payloads
additionally backed by shared read-only memory maps when the parent
loaded with ``mmap=True``.  The worker serves ops from one duplex pipe,
single-threaded and strictly FIFO: ``(req_id, op, payload)`` in,
``(req_id, ok, wire_payload)`` out.  Replies are wire-form dicts
(:func:`result_to_wire` et al.) so they pickle cheaply and the parent
can forward them to HTTP clients without touching engine objects.

A worker belongs to one snapshot *generation* (incremented by every
live swap) and is one *incarnation* of its slot (incremented by every
restart); both ride in the ready handshake so the dispatcher can prove
the fleet is never mixed-generation.  An optional
:class:`~repro.pool.faults.FaultPlan` is consulted on every received
op and on the stop sentinel — the deterministic chaos hooks.

A worker never initiates shutdown: it exits on the ``None`` sentinel
(graceful stop), on pipe EOF (the dispatcher went away), or abruptly
when crashed/killed — which the parent-side supervisor detects through
the process sentinel.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import replace

from repro.errors import DeadlineExceeded, ReproError, ServiceError
from repro.service.protocol import (
    error_to_wire,
    plan_to_wire,
    result_to_wire,
    telemetry_to_wire,
)
from repro.store.fingerprint import network_fingerprint


def _charged_search(engine, request, submitted_at: float):
    """Run one search, charging cross-process queue wait to the budget.

    ``submitted_at`` is the dispatcher's ``time.monotonic()`` at send
    time — comparable across processes on the same host — so a budgeted
    request that expired while queued in the worker's pipe fails typed
    before touching the engine, mirroring the server's admission-queue
    charge.
    """
    if request.deadline is not None:
        waited = time.monotonic() - submitted_at
        remaining = request.deadline - waited
        if remaining <= 0:
            if request.anytime:
                # Anytime requests still run: the engine turns the dead
                # budget into a best-so-far partial answer.
                remaining = 1e-3
            else:
                raise DeadlineExceeded(
                    f"request spent its {request.deadline:g}s deadline "
                    f"queued for a worker process ({waited:.3f}s queued)"
                )
        request = replace(request, deadline=remaining)
    return engine.search(request)


def _handle(worker_id: int, engine, op: str, payload):
    if op == "search":
        request, submitted_at = payload
        return result_to_wire(_charged_search(engine, request, submitted_at))
    if op == "explain":
        return plan_to_wire(engine.explain(payload))
    if op == "telemetry":
        return telemetry_to_wire(engine.telemetry())
    if op == "mutate":
        # A live-mutation broadcast: apply the batch to this worker's
        # engine copy and prove the outcome by recomputing the network
        # fingerprint — the dispatcher asserts every worker (and the
        # parent) landed on the same content, and kills any that
        # diverged instead of serving from it.
        summary = engine.apply(payload)
        summary["fingerprint"] = network_fingerprint(engine.network)
        return summary
    if op == "ping":
        return {"worker": worker_id, "pid": os.getpid()}
    if op == "sleep":
        # Supervision hook for tests and benchmarks: occupy this worker
        # for a deterministic window (e.g. to SIGKILL it mid-request).
        time.sleep(float(payload))
        return {"slept": float(payload)}
    if op == "exit":
        # Supervision hook: die abruptly, skipping all cleanup — the
        # scriptable stand-in for a segfault or OOM kill.
        os._exit(int(payload))
    raise ServiceError(f"unknown worker op {op!r}")


def worker_main(
    worker_id: int,
    conn,
    engine,
    fingerprint: str,
    generation: int = 0,
    incarnation: int = 0,
    fault_plan=None,
) -> None:
    """Serve ops from the dispatcher pipe until EOF or the stop sentinel.

    Runs inside the forked child.  Telemetry counters are reset at boot
    (the inherited cache *contents* stay warm) so this worker's numbers
    mean "traffic served here" and the parent can merge them cleanly.
    """
    # Ctrl-C goes to the whole foreground process group; orderly
    # shutdown is the dispatcher's job (stop sentinel, then SIGTERM).
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    engine.reset_telemetry()
    conn.send((
        "__ready__",
        {
            "worker": worker_id,
            "pid": os.getpid(),
            "fingerprint": fingerprint,
            "generation": generation,
            "incarnation": incarnation,
        },
    ))
    op_counts: dict[str, int] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break  # dispatcher went away; nothing left to serve
        if message is None:
            if fault_plan:
                stall = fault_plan.drain_stall(worker_id, incarnation)
                if stall > 0:
                    time.sleep(stall)
            break
        req_id, op, payload = message
        delay = 0.0
        if fault_plan:
            nth = op_counts[op] = op_counts.get(op, 0) + 1
            code = fault_plan.kill_code(worker_id, incarnation, op, nth)
            if code is not None:
                os._exit(code)  # before serving: the request dies in flight
            wedge = fault_plan.wedge_kind(worker_id, incarnation, op, nth)
            if wedge == "hang":
                # Wedge forever in a blocking sleep: the pipe stops being
                # read, the request never answers — only SIGKILL (from
                # the parent's stall watchdog) gets this process back.
                while True:
                    time.sleep(60.0)
            if wedge == "busy_loop":
                # Wedge spinning the CPU — an infinite loop rather than
                # a stuck syscall; equally invisible to process sentinels.
                x = 0
                while True:
                    x = (x + 1) % 1_000_003
            delay = fault_plan.reply_delay(worker_id, incarnation, op, nth)
        try:
            reply = (req_id, True, _handle(worker_id, engine, op, payload))
        except ReproError as exc:
            reply = (req_id, False, error_to_wire(exc))
        except Exception as exc:  # pragma: no cover - defensive
            reply = (req_id, False, {
                "type": "ServiceError",
                "message": f"worker {worker_id} failed on {op!r}: "
                           f"{type(exc).__name__}: {exc}",
            })
        if delay > 0:
            time.sleep(delay)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()
