"""repro.pool — the multi-process worker tier.

N worker processes forked from one warm engine (copy-on-write memory,
optionally mmap-shared snapshot arrays), a dispatcher that routes by
stage-cache affinity with least-loaded spillover, and a supervisor that
restarts dead workers and fails only their in-flight requests with a
typed :class:`~repro.errors.WorkerCrashed`.

Escapes the GIL ceiling of ``repro.service``'s default thread executor:
search stages are pure Python + numpy, so threads serialize on the
interpreter lock while processes scale with cores.
"""

from repro.pool.executor import PoolExecutor
from repro.pool.pool import WorkerPool

__all__ = ["PoolExecutor", "WorkerPool"]
