"""repro.pool — the multi-process worker tier.

N worker processes forked from one warm engine (copy-on-write memory,
optionally mmap-shared snapshot arrays), a dispatcher that routes by
stage-cache affinity with least-loaded spillover, and a supervisor that
restarts dead workers and fails only their in-flight requests with a
typed :class:`~repro.errors.WorkerCrashed`.

Escapes the GIL ceiling of ``repro.service``'s default thread executor:
search stages are pure Python + numpy, so threads serialize on the
interpreter lock while processes scale with cores.

The tier supports zero-downtime operations: :meth:`WorkerPool.swap`
replaces the fleet with workers forked from a freshly loaded snapshot
generation (old workers drain first; the reported identity flips
atomically), :meth:`WorkerPool.resize` grows or shrinks the fleet at
runtime, and :class:`~repro.pool.faults.FaultPlan` injects
deterministic worker faults (kills, reply delays, drain stalls,
corrupt snapshot reads) for chaos testing.
"""

from repro.pool.executor import PoolExecutor
from repro.pool.faults import Fault, FaultPlan
from repro.pool.pool import WorkerPool

__all__ = ["Fault", "FaultPlan", "PoolExecutor", "WorkerPool"]
