"""`repro.pool.faults`: deterministic fault injection for the worker tier.

A :class:`FaultPlan` is a declarative list of faults that the pool and
its workers consult at well-defined points, so chaos tests (and operators
rehearsing an incident) can reproduce a failure *exactly* instead of
hoping a ``kill -9`` races the right request:

* ``kill`` — the worker process exits abruptly (``os._exit``) upon
  receiving the Nth matching op, before serving it: the scriptable
  stand-in for a segfault mid-request.
* ``delay_reply`` — the worker sleeps before sending matching replies,
  simulating a stall on the reply pipe.
* ``stall_drain`` — the worker sleeps on the graceful-stop sentinel,
  exercising the drain-timeout/terminate path of swap, resize and stop.
* ``hang`` — the worker wedges forever upon receiving the Nth matching
  op (blocking sleep loop, stops reading its pipe): the scriptable
  stand-in for a stuck syscall, exercising the stall watchdog.
* ``busy_loop`` — like ``hang`` but spinning the CPU instead of
  sleeping: the stand-in for an infinite loop (the PR-1 GS-T
  arrangement blow-up) that a wall-clock watchdog must still catch.
* ``corrupt_snapshot`` — the next N admin snapshot loads fail with a
  typed :class:`~repro.errors.SnapshotError` before any worker is
  touched, proving the :class:`~repro.errors.ReloadError` rollback path.

Plans are inert by default and deterministic by construction: worker-side
faults key on ``(slot, incarnation, op, nth)``, where *incarnation*
counts the processes that have filled a slot (restarts and swaps
increment it) — so a ``kill`` fault fires once and does not fork-bomb
the replacement unless ``incarnation`` is explicitly ``None`` (any).

Inject a plan with ``WorkerPool(fault_plan=...)``, the CLI flag
``repro serve --fault-plan '<json>'``, or the ``REPRO_FAULT_PLAN``
environment variable (read at pool construction).
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass

from repro.errors import ServiceError, SnapshotError

ENV_VAR = "REPRO_FAULT_PLAN"

FAULT_KINDS = (
    "kill",
    "delay_reply",
    "stall_drain",
    "corrupt_snapshot",
    "hang",
    "busy_loop",
)

#: Kinds that wedge the worker process instead of killing or slowing it.
WEDGE_KINDS = ("hang", "busy_loop")


@dataclass(frozen=True)
class Fault:
    """One declarative fault.  See the module docstring for the kinds."""

    kind: str
    slot: int | None = None  # None = any worker slot
    op: str = "search"  # which op arms worker-side faults
    after: int = 1  # fire on the Nth matching op (1-based)
    incarnation: int | None = 0  # None = every process filling the slot
    seconds: float = 0.0  # delay_reply / stall_drain duration
    exit_code: int = 137  # kill exit status (mirrors SIGKILL)
    count: int = 1  # corrupt_snapshot: loads to poison

    @classmethod
    def parse(cls, spec: dict) -> Fault:
        if not isinstance(spec, dict):
            raise ServiceError(f"a fault spec must be a JSON object, got {spec!r}")
        unknown = set(spec) - {
            "kind",
            "slot",
            "op",
            "after",
            "incarnation",
            "seconds",
            "exit_code",
            "count",
        }
        if unknown:
            raise ServiceError(f"unknown fault field(s): {sorted(unknown)}")
        kind = spec.get("kind")
        if kind not in FAULT_KINDS:
            raise ServiceError(
                f"fault kind must be one of {FAULT_KINDS}, got {kind!r}"
            )
        fault = cls(
            kind=kind,
            slot=spec.get("slot"),
            op=str(spec.get("op", "search")),
            after=int(spec.get("after", 1)),
            incarnation=spec.get("incarnation", 0),
            seconds=float(spec.get("seconds", 0.0)),
            exit_code=int(spec.get("exit_code", 137)),
            count=int(spec.get("count", 1)),
        )
        if fault.slot is not None and (
            not isinstance(fault.slot, int) or fault.slot < 0
        ):
            raise ServiceError(f"fault slot must be a slot index, got {fault.slot!r}")
        if fault.incarnation is not None and (
            not isinstance(fault.incarnation, int) or fault.incarnation < 0
        ):
            raise ServiceError(
                f"fault incarnation must be >= 0 or null, got {fault.incarnation!r}"
            )
        if fault.after < 1:
            raise ServiceError(f"fault after must be >= 1, got {fault.after}")
        if fault.seconds < 0:
            raise ServiceError(f"fault seconds must be >= 0, got {fault.seconds}")
        if fault.kind in ("delay_reply", "stall_drain") and fault.seconds == 0:
            raise ServiceError(f"a {kind} fault needs seconds > 0")
        if fault.count < 1:
            raise ServiceError(f"fault count must be >= 1, got {fault.count}")
        return fault

    def to_wire(self) -> dict:
        wire = {"kind": self.kind}
        if self.kind == "corrupt_snapshot":
            wire["count"] = self.count
            return wire
        wire.update(slot=self.slot, incarnation=self.incarnation)
        if self.kind in ("kill", "delay_reply") or self.kind in WEDGE_KINDS:
            wire.update(op=self.op, after=self.after)
        if self.kind in WEDGE_KINDS:
            return wire
        if self.kind == "kill":
            wire["exit_code"] = self.exit_code
        else:
            wire["seconds"] = self.seconds
        return wire

    def _matches_process(self, slot: int, incarnation: int) -> bool:
        if self.slot is not None and self.slot != slot:
            return False
        return self.incarnation is None or self.incarnation == incarnation


class FaultPlan:
    """An ordered set of :class:`Fault` s, consulted by pool and workers.

    Worker-side hooks (:meth:`kill_code`, :meth:`reply_delay`,
    :meth:`drain_stall`) are pure functions of the call site — the
    per-op counters live in the worker loop, so a forked child carries
    no shared mutable state.  The parent-side :meth:`check_snapshot_load`
    consumes ``corrupt_snapshot`` budget under a lock.
    """

    def __init__(self, faults: tuple[Fault, ...] = ()) -> None:
        self.faults = tuple(faults)
        self._lock = threading.Lock()
        self._corrupt_used = 0

    @classmethod
    def parse(cls, spec) -> FaultPlan:
        """Build a plan from a JSON string, a list of fault objects, or
        a ``{"faults": [...]}`` wrapper.  ``None``/empty → inert plan."""
        if spec is None or spec == "":
            return cls(())
        if isinstance(spec, str):
            try:
                spec = json.loads(spec)
            except json.JSONDecodeError as exc:
                raise ServiceError(f"fault plan is not valid JSON: {exc}") from exc
        if isinstance(spec, dict):
            spec = spec.get("faults", [spec] if "kind" in spec else [])
        if not isinstance(spec, list):
            raise ServiceError(
                f"a fault plan must be a JSON list of fault objects, got {spec!r}"
            )
        return cls(tuple(Fault.parse(entry) for entry in spec))

    @classmethod
    def from_env(cls, environ=None) -> FaultPlan:
        """The plan injected via ``REPRO_FAULT_PLAN`` (inert if unset)."""
        env = os.environ if environ is None else environ
        return cls.parse(env.get(ENV_VAR))

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def to_wire(self) -> list[dict]:
        return [fault.to_wire() for fault in self.faults]

    # -- worker-side hooks --------------------------------------------
    def kill_code(self, slot: int, incarnation: int, op: str, nth: int):
        """Exit code to die with upon receiving this op, or ``None``."""
        for fault in self.faults:
            if (
                fault.kind == "kill"
                and fault._matches_process(slot, incarnation)
                and fault.op == op
                and fault.after == nth
            ):
                return fault.exit_code
        return None

    def wedge_kind(self, slot: int, incarnation: int, op: str, nth: int):
        """``"hang"``/``"busy_loop"`` to wedge on this op, or ``None``.

        Exact ``after == nth`` matching, like :meth:`kill_code`: the
        wedge fires once per incarnation, and the watchdog-respawned
        replacement (next incarnation) serves normally unless the fault
        pins ``incarnation`` to ``None``.
        """
        for fault in self.faults:
            if (
                fault.kind in WEDGE_KINDS
                and fault._matches_process(slot, incarnation)
                and fault.op == op
                and fault.after == nth
            ):
                return fault.kind
        return None

    def reply_delay(self, slot: int, incarnation: int, op: str, nth: int) -> float:
        """Seconds to stall before replying to this op (0.0 = no fault)."""
        return max(
            (
                fault.seconds
                for fault in self.faults
                if fault.kind == "delay_reply"
                and fault._matches_process(slot, incarnation)
                and fault.op == op
                and nth >= fault.after
            ),
            default=0.0,
        )

    def drain_stall(self, slot: int, incarnation: int) -> float:
        """Seconds to stall on the graceful-stop sentinel (0.0 = none)."""
        return max(
            (
                fault.seconds
                for fault in self.faults
                if fault.kind == "stall_drain"
                and fault._matches_process(slot, incarnation)
            ),
            default=0.0,
        )

    # -- parent-side hooks --------------------------------------------
    def check_snapshot_load(self, path) -> None:
        """Consume one ``corrupt_snapshot`` budget unit, raising typed.

        Called by the admin reload path before the snapshot is read, so
        the injected failure is indistinguishable from a truncated or
        bit-flipped archive to everything above it — without touching
        the real file.
        """
        budget = sum(f.count for f in self.faults if f.kind == "corrupt_snapshot")
        with self._lock:
            if self._corrupt_used < budget:
                self._corrupt_used += 1
                raise SnapshotError(
                    f"injected fault: snapshot read of {path} returned "
                    f"corrupt data (fault {self._corrupt_used}/{budget})"
                )
