"""The adapted branch-and-bound skyline (BBS) traversal of Section IV-B.

Differences from classic BBS [26], exactly as the paper lists them:

1. dominance is **r-dominance** (vertex-to-vertex and vertex-to-MBB tests
   happen downstream in the dominance-graph builder);
2. the max-heap sorting key is the score of an R-tree node's upper-right
   MBB corner — respectively a vertex's own score — at the **pivot vector**
   of R (the mean of R's polytope vertices), which leads the search to
   r-dominate as many members as possible first;
3. *all* vertices are emitted (the r-dominance graph keeps every pairwise
   relationship, not just the top-j layers).

Correctness of the emission order: the pivot lies in R (convexity), the
upper-right corner's pivot score upper-bounds every point in the MBB
(weights are positive), hence vertices pop in non-increasing pivot score,
and a vertex popped later can never r-dominate an earlier one.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator

import numpy as np

from repro.geometry.halfspace import score
from repro.geometry.region import PreferenceRegion
from repro.spatial.rtree import RTree, RTreeNode


def bbs_order(
    rtree: RTree, region: PreferenceRegion
) -> Iterator[tuple[object, float]]:
    """Yield ``(payload, pivot_score)`` in non-increasing pivot score.

    Ties are broken by payload ordering so the traversal is deterministic,
    which the dominance-graph builder relies on for reproducible DAGs.
    """
    if rtree.root is None:
        return
    pivot = region.pivot()

    def node_key(node: RTreeNode) -> float:
        return score(node.upper, pivot)

    counter = 0
    heap: list[tuple[float, object, int, object]] = []

    def push(kind: str, key: float, tie: object, item: object) -> None:
        nonlocal counter
        counter += 1
        heapq.heappush(heap, (-key, tie, counter, (kind, item)))

    push("node", node_key(rtree.root), "", rtree.root)
    while heap:
        neg_key, _tie, _count, (kind, item) = heapq.heappop(heap)
        if kind == "point":
            point, payload = item
            yield payload, -neg_key
            continue
        node: RTreeNode = item
        if node.is_leaf:
            for point, payload in node.entries:
                push(
                    "point",
                    score(np.asarray(point), pivot),
                    repr(payload),
                    (point, payload),
                )
        else:
            for child in node.children:
                push("node", node_key(child), "", child)
