"""Spatial index substrate: R-tree over attribute vectors + adapted BBS."""

from repro.spatial.bbs import bbs_order
from repro.spatial.rtree import RTree

__all__ = ["RTree", "bbs_order"]
