"""A d-dimensional R-tree bulk-loaded with Sort-Tile-Recursive (STR).

The paper organizes the attribute-vector set X with a spatial index
(R-tree, [18]) so the adapted BBS of Section IV-B can traverse minimum
bounding boxes best-first.  Points only (the vector set), which keeps STR
simple and packing near-optimal.
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Sequence

import numpy as np

from repro.errors import GeometryError


class RTreeNode:
    """Node with an MBB; leaves hold ``(point, payload)`` entries."""

    __slots__ = ("lower", "upper", "children", "entries")

    def __init__(self) -> None:
        self.lower: np.ndarray | None = None
        self.upper: np.ndarray | None = None
        self.children: list[RTreeNode] = []
        self.entries: list[tuple[np.ndarray, object]] = []

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def _fit(self) -> None:
        if self.is_leaf:
            pts = np.asarray([p for p, _ in self.entries])
            self.lower = pts.min(axis=0)
            self.upper = pts.max(axis=0)
        else:
            self.lower = np.min([c.lower for c in self.children], axis=0)
            self.upper = np.max([c.upper for c in self.children], axis=0)


class RTree:
    """Static, STR bulk-loaded R-tree over points.

    Parameters
    ----------
    points:
        Array-like of shape ``(n, dim)``.
    payloads:
        One payload per point (defaults to the row index).
    capacity:
        Maximum entries per leaf and children per internal node.
    """

    def __init__(
        self,
        points: Sequence[Sequence[float]],
        payloads: Sequence[object] | None = None,
        capacity: int = 32,
    ) -> None:
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2:
            raise GeometryError("points must be a 2-d array")
        if capacity < 2:
            raise GeometryError(f"capacity must be >= 2, got {capacity}")
        if payloads is None:
            payloads = list(range(len(pts)))
        if len(payloads) != len(pts):
            raise GeometryError("payloads length must match points")
        self.dim = int(pts.shape[1]) if len(pts) else 0
        self.capacity = capacity
        self.size = len(pts)
        self.root: RTreeNode | None = None
        if len(pts):
            entries = [(pts[i], payloads[i]) for i in range(len(pts))]
            leaves = self._pack_leaves(entries)
            self.root = self._build_levels(leaves)

    # ------------------------------------------------------------------
    def _str_tile(self, items: list, key_axis_getter) -> list[list]:
        """One STR pass: recursively tile items into capacity-size runs."""

        def recurse(chunk: list, axis: int) -> list[list]:
            if len(chunk) <= self.capacity:
                return [chunk]
            chunk = sorted(chunk, key=lambda it: key_axis_getter(it, axis))
            n_groups = math.ceil(len(chunk) / self.capacity)
            if axis == self.dim - 1:
                return [
                    chunk[i * self.capacity : (i + 1) * self.capacity]
                    for i in range(n_groups)
                ]
            slices = math.ceil(n_groups ** (1.0 / (self.dim - axis)))
            run = math.ceil(len(chunk) / slices)
            out: list[list] = []
            for i in range(0, len(chunk), run):
                out.extend(recurse(chunk[i : i + run], axis + 1))
            return out

        return recurse(items, 0)

    def _pack_leaves(self, entries: list) -> list[RTreeNode]:
        groups = self._str_tile(entries, lambda it, ax: float(it[0][ax]))
        leaves = []
        for group in groups:
            node = RTreeNode()
            node.entries = group
            node._fit()
            leaves.append(node)
        return leaves

    def _build_levels(self, nodes: list[RTreeNode]) -> RTreeNode:
        while len(nodes) > 1:
            groups = self._str_tile(
                nodes, lambda nd, ax: float((nd.lower[ax] + nd.upper[ax]) / 2)
            )
            parents = []
            for group in groups:
                parent = RTreeNode()
                parent.children = group
                parent._fit()
                parents.append(parent)
            nodes = parents
        return nodes[0]

    # ------------------------------------------------------------------
    def height(self) -> int:
        h, node = 0, self.root
        while node is not None and not node.is_leaf:
            node = node.children[0]
            h += 1
        return h

    def query_box(
        self, lower: Sequence[float], upper: Sequence[float]
    ) -> Iterator[tuple[np.ndarray, object]]:
        """All (point, payload) pairs inside the closed box [lower, upper]."""
        if self.root is None:
            return
        lo = np.asarray(lower, dtype=float)
        hi = np.asarray(upper, dtype=float)
        stack = [self.root]
        while stack:
            node = stack.pop()
            if np.any(node.lower > hi) or np.any(node.upper < lo):
                continue
            if node.is_leaf:
                for p, payload in node.entries:
                    if np.all(p >= lo) and np.all(p <= hi):
                        yield p, payload
            else:
                stack.extend(node.children)

    def all_entries(self) -> Iterator[tuple[np.ndarray, object]]:
        if self.root is None:
            return
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.entries
            else:
                stack.extend(node.children)
