"""Personalized optimum community search: rebuilding a basketball team.

The paper's first motivating application (Section I): a coach wants to
reorganize the school team around certain players to improve offense.
Players form a collaboration network (who has played with whom), each
carries three per-game statistics — points, rebounds, assists — and
lives somewhere in the city; practice attendance bounds the travel
distance.  The coach weighs scoring highest but cannot give exact
weights: the preference region leaves room for uncertainty, and the MAC
search returns the best squad for *every* weighting it allows.

Run:  python examples/team_reorganization.py
"""

import numpy as np

from repro import (
    AdjacencyGraph,
    MACEngine,
    MACRequest,
    PreferenceRegion,
    RoadSocialNetwork,
    SocialNetwork,
    SpatialPoint,
)
from repro.datasets import grid_road

rng = np.random.default_rng(42)

# --- the city and the league --------------------------------------------
road = grid_road(400, seed=1, spacing=10.0)
road_vertices = sorted(road.vertices())

NUM_PLAYERS = 120
TEAMS = 8
players = list(range(NUM_PLAYERS))
graph = AdjacencyGraph()
for p in players:
    graph.add_vertex(p)

# Players who trained in the same club know each other densely; a few
# cross-club friendships keep the league connected.
club_of = {p: p % TEAMS for p in players}
for a in players:
    for b in players:
        if a < b:
            same = club_of[a] == club_of[b]
            if rng.random() < (0.55 if same else 0.02):
                graph.add_edge(a, b)

# Per-game stats: every player has a profile mixing scorer / big / guard.
profiles = rng.dirichlet([1.2, 1.0, 1.0], size=NUM_PLAYERS)
talent = rng.uniform(3.0, 9.5, size=NUM_PLAYERS)
stats = {
    p: np.round(profiles[p] * talent[p] * 3.0, 1) for p in players
}  # (points, rebounds, assists) on a 0-10-ish scale

# Homes: clubs cluster by neighbourhood.
club_centers = rng.choice(road_vertices, size=TEAMS, replace=False)
locations = {}
for p in players:
    center_xy = np.asarray(road.coordinates(int(club_centers[club_of[p]])))
    target = center_xy + rng.normal(0, 15.0, 2)
    nearest = min(
        road_vertices,
        key=lambda v: float(
            np.linalg.norm(np.asarray(road.coordinates(v)) - target)
        ),
    )
    locations[p] = SpatialPoint.at_vertex(nearest)

network = RoadSocialNetwork(road, SocialNetwork(graph, stats, locations))

# --- the coach's query ----------------------------------------------------
# Build around the two most talented club-0 players; everyone must know
# >= 5 squad mates and live within 120 road units of both captains.
club0 = [p for p in players if club_of[p] == 0]
captains = tuple(sorted(club0, key=lambda p: -talent[p])[:2])
k, t = 5, 120.0

# "Offense first": weight on points roughly 0.5-0.6, rebounds 0.2-0.3,
# assists the rest — an uncertain preference, not a point.
region = PreferenceRegion([0.50, 0.20], [0.60, 0.30])

engine = MACEngine(network)
request = MACRequest.make(
    captains, k, t, region, j=2, problem="topj", algorithm="global",
    label="rebuild-squad",
)
print(engine.explain(request).summary(), end="\n\n")
result = engine.search(request)
if result.is_empty:
    print("no feasible squad for these captains — relax k or t")
else:
    print(
        f"{len(result.partitions)} preference partition(s), "
        f"{len(result.communities())} distinct squad(s) "
        f"(searched {result.htk_vertices} eligible players)"
    )
    for i, entry in enumerate(result.partitions):
        squad = entry.best
        w = entry.sample_weight()
        quality = squad.score_at(w, network.social.attributes)
        print(f"\npartition {i} (w ≈ {w.round(2)}): "
              f"best squad of {len(squad)} — min weighted stat {quality:.2f}")
        for p in sorted(squad.members):
            pts, reb, ast = network.social.attribute(p)
            tag = " (captain)" if p in captains else ""
            print(f"   player {p:3d}: {pts:4.1f} pts "
                  f"{reb:4.1f} reb {ast:4.1f} ast{tag}")
