"""Cohesive group discovery in an LBSN: epidemic contact precaution.

The paper's second motivating application (Section I): given several
confirmed cases, possible close contacts are socially tied to them *and*
within a bounded road distance (opportunity for physical contact).  Each
user carries two numerical attributes — interest similarity to the
confirmed cases (shared venues/hobbies, a Jaccard score) and social
influence (#neighbours, normalized) — and investigators want the tight
groups ranking highest under an uncertain weighting of the two.

Run:  python examples/contact_tracing.py
"""

import numpy as np

from repro import (
    AdjacencyGraph,
    MACEngine,
    MACRequest,
    PreferenceRegion,
    RoadSocialNetwork,
    SocialNetwork,
    SpatialPoint,
)
from repro.datasets import grid_road

rng = np.random.default_rng(3)

# --- city + population ----------------------------------------------------
road = grid_road(900, seed=5, spacing=12.0)
road_vertices = sorted(road.vertices())

N = 300
graph = AdjacencyGraph()
for u in range(N):
    graph.add_vertex(u)

# Social circles around venues (gyms, offices, bars...).
NUM_VENUES = 10
venue_of = rng.integers(NUM_VENUES, size=N)
for a in range(N):
    for b in range(a + 1, N):
        p = 0.35 if venue_of[a] == venue_of[b] else 0.01
        if rng.random() < p:
            graph.add_edge(a, b)

# Confirmed cases: three members of venue 0.
cases = tuple(int(v) for v in np.flatnonzero(venue_of == 0)[:3])

# Attributes: similarity to the cases' interest profile, and influence.
case_profile = rng.random(16) < 0.4
similarity = {}
for u in range(N):
    profile = rng.random(16) < (0.55 if venue_of[u] == 0 else 0.25)
    inter = np.sum(profile & case_profile)
    union = max(1, np.sum(profile | case_profile))
    similarity[u] = 10.0 * inter / union
max_deg = max(graph.degree(u) for u in range(N))
attributes = {
    u: np.array([similarity[u], 10.0 * graph.degree(u) / max_deg])
    for u in range(N)
}

# Homes cluster around the venues.
venue_sites = rng.choice(road_vertices, size=NUM_VENUES, replace=False)
locations = {}
for u in range(N):
    center = np.asarray(road.coordinates(int(venue_sites[venue_of[u]])))
    target = center + rng.normal(0, 18.0, 2)
    nearest = min(
        road_vertices,
        key=lambda v: float(
            np.linalg.norm(np.asarray(road.coordinates(v)) - target)
        ),
    )
    locations[u] = SpatialPoint.at_vertex(nearest)

network = RoadSocialNetwork(road, SocialNetwork(graph, attributes, locations))

# --- the investigation ------------------------------------------------------
# Contacts must know >= 3 others in the group and live within 150 road
# units of every confirmed case.  Similarity is weighted 0.55-0.75 (the
# d = 2 preference domain is the single reduced weight w1).
k, t = 3, 150.0
region = PreferenceRegion([0.55], [0.75])

# One engine serves the whole investigation: the staged top-3 query
# below reuses the range filter, (k,t)-core and dominance graph this
# first search prepares.
engine = MACEngine(network)
result = engine.search(
    MACRequest.make(cases, k, t, region, algorithm="local")
)
print(f"confirmed cases: {cases}")
print(f"candidate contacts within t={t}: {result.htk_vertices} users")
print(f"LS-NC: {len(result.partitions)} partition(s) "
      f"in {result.elapsed:.3f}s")
for entry in result.partitions:
    group = sorted(entry.best.members)
    w1 = float(entry.sample_weight()[0])
    print(f"\n  weights ≈ ({w1:.2f} similarity, {1 - w1:.2f} influence): "
          f"priority group of {len(group)}")
    contacts = [u for u in group if u not in cases]
    print(f"  new contacts to trace: {contacts}")

# Widen to the top-3 groups for staged testing capacity (warm caches:
# only the top-j local search itself runs again).
staged = engine.search(MACRequest.make(
    cases, k, t, region, j=3, problem="topj", algorithm="local",
))
print(f"\n(prepared state reused: {staged.extra['engine']['cache']})")
entry = staged.partitions[0]
print("\nstaged testing waves (top-3 MACs, tightest first):")
for rank, community in enumerate(entry.communities, start=1):
    print(f"  wave {rank}: {len(community)} people")
