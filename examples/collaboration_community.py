"""The Aminer case study (Fig. 15): MAC vs SkyC vs InfC vs ATC.

Queries four renowned data-mining scientists in an Aminer-like
collaboration network (authors carry h-index, #publications, activeness
and diverseness; research groups cluster geographically on an
NA-like road map) and contrasts the paper's MAC model with the three
prior community models it is evaluated against.

Run:  python examples/collaboration_community.py
"""

from repro import MACEngine, MACRequest, PreferenceRegion
from repro.baselines.influential import influ_nc
from repro.baselines.skyline import skyline_communities
from repro.baselines.truss_attribute import attribute_truss_community
from repro.datasets import aminer_case_study
from repro.geometry.halfspace import score

cs = aminer_case_study(num_background=600, groups=20, seed=11)
net = cs.network
print(f"collaboration network: {net.social}")
print(f"query authors: {', '.join(cs.names(cs.query))}")

# Fig. 15 setting: k = 5, top-2, R = [0.1,0.3]x[0.3,0.5]x[0.05,0.1]
# over (h-index, #publications, activeness) with diverseness as the
# dropped fourth weight; t is effectively unbounded.
k, j = 5, 2
region = PreferenceRegion([0.1, 0.3, 0.05], [0.3, 0.5, 0.1])

# Global search (GS-T), as in the paper's case study — with an anytime
# budget: the exact arrangement over 3 reduced dimensions can be a
# long-running analysis job, so give it 30 s and take the best-so-far
# feasible communities (marked partial) if the budget expires first.
engine = MACEngine(net)
result = engine.search(MACRequest.make(
    cs.query, k, 1e9, region, j=j, problem="topj", algorithm="global",
    deadline=30.0, anytime=True,
))
if result.partial:
    print(f"(partial answer: 30s budget expired at {result.progress})")
nc_macs = []
for i, entry in enumerate(result.partitions):
    print(f"\npartition {i}:")
    for rank, community in enumerate(entry.communities, start=1):
        label = "top-1 NC-MAC" if rank == 1 else f"top-{rank} MAC"
        print(f"  {label} ({len(community)}): "
              f"{', '.join(cs.names(community.members))}")
    nc_macs.append(entry.communities[0].members)

graph = net.social.graph
attrs = net.social.attributes

print("\n--- prior models on the same query ---")

# InfC (Li et al. 2015): influence = one attribute only (#publications).
infc = influ_nc(graph, {v: float(attrs[v][1]) for v in graph}, k, cs.query)
if infc:
    print(f"InfC (1-D #pubs, {len(infc)}): {', '.join(cs.names(infc))}")

# InfC with the weighted sum at the centre of R: covered by an NC-MAC.
w = region.pivot()
infc_w = influ_nc(
    graph, {v: score(attrs[v], w) for v in graph}, k, cs.query
)
if infc_w:
    covered = any(infc_w <= m for m in nc_macs)
    print(f"InfC (w ∈ R, {len(infc_w)}, covered by an NC-MAC: {covered}): "
          f"{', '.join(cs.names(infc_w))}")

# SkyC (Li et al. 2018): query-free skyline around the DM neighbourhood.
neighborhood = set(cs.query)
for v in cs.query:
    neighborhood |= graph.neighbors(v)
sub = graph.subgraph(neighborhood)
sky = skyline_communities(
    sub, {v: attrs[v] for v in sub.vertices()}, k, prune=True, budget=30_000
)
for members, f in sky[:2]:
    contained = any(members <= m for m in nc_macs)
    print(f"SkyC ({len(members)}, contained in an NC-MAC: {contained}): "
          f"{', '.join(cs.names(members))}")

# ATC (Huang & Lakshmanan 2017): (k+1)-truss with keyword 'DM'.
atc = attribute_truss_community(graph, cs.keywords, cs.query, k, keyword="DM")
if atc:
    print(f"ATC 'DM' ({len(atc)}): {', '.join(cs.names(atc))}")
    print(f"  -> {'larger than' if len(atc) > max(map(len, nc_macs)) else 'comparable to'} "
          f"the MACs: keyword coverage ignores numerical attributes")
