"""Quickstart: multi-attributed community search through the engine.

Generates a small road-social network, constructs a long-lived
``MACEngine`` over it, expresses an uncertain user preference as a
region R of the preference domain, and retrieves the non-contained MACs
(Problem 2) plus the top-2 MACs (Problem 1) with both the local
(Algorithms 3-5) and global (Algorithm 1) search.  Because both
requests share (Q, k, t), the second one reuses the engine's cached
range filter, coreness arrays, (k,t)-core and r-dominance graph.

Run:  python examples/quickstart.py
"""

from repro import MACEngine, MACRequest, PreferenceRegion, datasets

# A scaled-down SF+Slashdot-like pairing: ~750 users with 3 numerical
# attributes on a ~1000-intersection road grid (seeded, deterministic).
ds = datasets.load_dataset("sf+slashdot", scale=0.25, seed=7)
engine = MACEngine(ds.network)
print(f"social: {ds.network.social}")
print(f"road:   {ds.network.road}")

# Query: 4 socially-close users picked so the (k,t)-core exists.
k, t = 6, 150.0
query = ds.suggest_query(4, k=k, t=t, seed=2)
print(f"\nquery users Q = {query}, k = {k}, t = {t}")

# The user cares mostly about attributes 1 and 2 but cannot pin exact
# weights: R is a 1%-side box around w = (0.3, 0.3) (w3 = 1 - w1 - w2).
region = PreferenceRegion.from_sigma([0.30, 0.30], 0.01)
print(f"preference region R = {region}")

# Problem 2 with the local search: the non-contained MAC per partition.
ls_request = MACRequest.make(
    query, k, t, region, algorithm="local", label="ls-nc"
)
result = engine.search(ls_request)
print(f"\nLS-NC found {len(result.partitions)} partition(s) "
      f"in {result.elapsed:.3f}s (|H^t_k| = {result.htk_vertices})")
for i, entry in enumerate(result.partitions):
    w = entry.sample_weight()
    members = sorted(entry.best.members)
    print(f"  partition {i}: representative w = {w.round(3)}, "
          f"|community| = {len(members)}, members ⊇ {members[:10]}...")

# Problem 1 with the global search: the exact top-2 chain everywhere.
# Same (Q, k, t, R): every prepared pipeline stage is a cache hit.
gs_request = MACRequest.make(
    query, k, t, region, j=2, problem="topj", algorithm="global",
    label="gs-topj",
)
print("\n" + engine.explain(gs_request).summary())
result2 = engine.search(gs_request)
print(f"\nGS-T: {len(result2.partitions)} partition(s), "
      f"{len(result2.communities())} distinct MAC(s), "
      f"cache: {result2.extra['engine']['cache']}")
entry = max(result2.partitions, key=lambda e: len(e.communities))
sizes = [len(c) for c in entry.communities]
print(f"  deepest partition top-2 sizes: {sizes}")
if len(entry.communities) > 1:
    nested = entry.communities[0].members < entry.communities[1].members
    print(f"  chain is nested (top-1 ⊂ top-2): {nested}")

tel = engine.telemetry()
print(f"\nengine: {tel.searches} searches, cache hits={tel.hits}, "
      f"misses={tel.misses}")
