"""Quickstart: multi-attributed community search in 40 lines.

Generates a small road-social network, expresses an uncertain user
preference as a region R of the preference domain, and retrieves the
non-contained MACs (Problem 2) plus the top-2 MACs (Problem 1) with both
the global (Algorithm 1) and local (Algorithms 3-5) search.

Run:  python examples/quickstart.py
"""

from repro import PreferenceRegion, datasets, gs_topj, ls_nc

# A scaled-down SF+Slashdot-like pairing: ~750 users with 3 numerical
# attributes on a ~1000-intersection road grid (seeded, deterministic).
ds = datasets.load_dataset("sf+slashdot", scale=0.25, seed=7)
network = ds.network
print(f"social: {network.social}")
print(f"road:   {network.road}")

# Query: 4 socially-close users picked so the (k,t)-core exists.
k, t = 6, 150.0
query = ds.suggest_query(4, k=k, t=t, seed=2)
print(f"\nquery users Q = {query}, k = {k}, t = {t}")

# The user cares mostly about attributes 1 and 2 but cannot pin exact
# weights: R is a 1%-side box around w = (0.3, 0.3) (w3 = 1 - w1 - w2).
region = PreferenceRegion.from_sigma([0.30, 0.30], 0.01)
print(f"preference region R = {region}")

# Problem 2 with the local search: the non-contained MAC per partition.
result = ls_nc(network, query, k, t, region)
print(f"\nLS-NC found {len(result.partitions)} partition(s) "
      f"in {result.elapsed:.3f}s (|H^t_k| = {result.htk_vertices})")
for i, entry in enumerate(result.partitions):
    w = entry.sample_weight()
    members = sorted(entry.best.members)
    print(f"  partition {i}: representative w = {w.round(3)}, "
          f"|community| = {len(members)}, members ⊇ {members[:10]}...")

# Problem 1 with the global search: the exact top-2 chain everywhere.
result2 = gs_topj(network, query, k, t, region, j=2)
print(f"\nGS-T: {len(result2.partitions)} partition(s), "
      f"{len(result2.communities())} distinct MAC(s)")
entry = max(result2.partitions, key=lambda e: len(e.communities))
sizes = [len(c) for c in entry.communities]
print(f"  deepest partition top-2 sizes: {sizes}")
if len(entry.communities) > 1:
    nested = entry.communities[0].members < entry.communities[1].members
    print(f"  chain is nested (top-1 ⊂ top-2): {nested}")
