"""Live graph mutations: the community follows the network's drift.

A contact-tracing-style deployment (see ``contact_tracing.py``) where
the network changes *while the engine serves*: new friendships form,
interest scores are re-assessed, a user relocates.  Instead of
rebuilding, the engine applies typed mutation batches atomically —
repairing coreness incrementally, sweeping only the cache entries whose
queries could observe the change — and every batch is appended to the
snapshot's delta log, so a restart replays history instead of losing
it.

Run:  python examples/live_updates.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    AdjacencyGraph,
    MACEngine,
    MACRequest,
    MutationError,
    PreferenceRegion,
    RoadSocialNetwork,
    SocialNetwork,
    SpatialPoint,
)
from repro.datasets import grid_road
from repro.graph.core import core_decomposition
from repro.live import add_social_edge, move_user, update_attributes
from repro.store import append_delta, read_deltas

N = 120


def build_network() -> RoadSocialNetwork:
    """The *base* network, reproducibly: the snapshot's ground truth.

    A reboot below rebuilds this exact content and lets the delta log
    bring it up to date — the live-update contract.
    """
    rng = np.random.default_rng(11)
    road = grid_road(400, seed=5, spacing=10.0)
    road_vertices = sorted(road.vertices())

    graph = AdjacencyGraph()
    for u in range(N):
        graph.add_vertex(u)
    # A handful of overlapping circles plus random weak ties.
    for _ in range(8):
        circle = rng.choice(N, size=8, replace=False)
        for i, u in enumerate(circle):
            for v in circle[i + 1:]:
                if rng.random() < 0.6 and not graph.has_edge(int(u), int(v)):
                    graph.add_edge(int(u), int(v))
    for _ in range(120):
        u, v = (int(x) for x in rng.choice(N, size=2, replace=False))
        if not graph.has_edge(u, v):
            graph.add_edge(u, v)

    attributes = {
        u: tuple(np.round(rng.uniform(0.1, 1.0, size=2), 3))
        for u in range(N)
    }
    locations = {
        u: SpatialPoint.at_vertex(int(rng.choice(road_vertices)))
        for u in range(N)
    }
    return RoadSocialNetwork(
        road, SocialNetwork(graph, attributes, locations)
    )


network = build_network()
rng = np.random.default_rng(17)

# Query two socially-adjacent users who sit in the 3-core: a pair with
# a real chance of anchoring a (k, t)-community.
coreness = core_decomposition(network.social.graph, backend="python")
query = next(
    (u, v)
    for u in sorted(coreness)
    if coreness[u] >= 3
    for v in sorted(network.social.graph.neighbors(u))
    if v > u and coreness[v] >= 3
)
request = MACRequest.make(
    query=query,
    k=3,
    t=200.0,
    region=PreferenceRegion.centered([0.5], 0.2),
    algorithm="global",
)

with tempfile.TemporaryDirectory() as tmp:
    snapshot = Path(tmp) / "idx"
    MACEngine(network).save(snapshot)
    engine = MACEngine.load(snapshot, network)

    before = engine.search(request)
    print(f"before: htk={before.htk_vertices} "
          f"partitions={len(before.partitions)}")

    # --- the network drifts ---------------------------------------------
    graph = network.social.graph
    anchor = (
        min(before.partitions[0].best.members) if before.partitions else 0
    )
    outsider = next(
        w for w in range(N) if w != anchor and not graph.has_edge(anchor, w)
    )
    road_vertices = sorted(network.road.vertices())
    batch = [
        add_social_edge(anchor, outsider),         # a friendship forms
        update_attributes(outsider, (0.95, 0.9)),  # scores re-assessed
        move_user(                                  # ... and they relocate
            outsider,
            SpatialPoint.at_vertex(int(rng.choice(road_vertices))),
        ),
    ]
    summary = engine.apply(batch)
    # Persist the accepted batch beside the snapshot (the serving layer
    # does this automatically when booted with --snapshot).
    append_delta(snapshot, batch)
    print(f"applied batch #{summary['delta_seq']}: "
          f"{summary['by_kind']} "
          f"(evicted {summary['evicted']} cache entries, "
          f"repaired {summary['repaired_entries']})")

    after = engine.search(request)
    print(f"after:  htk={after.htk_vertices} "
          f"partitions={len(after.partitions)}")

    # Batches are all-or-nothing: one bad mutation rejects the lot.
    try:
        engine.apply([add_social_edge(anchor, outsider)])  # now a duplicate
    except MutationError as exc:
        print(f"rejected atomically: {exc}")

    # The delta log beside the snapshot is the full history ...
    records = read_deltas(snapshot)
    print(f"delta log: {len(records)} batch(es), "
          f"last seq {records[-1]['seq']}")

    # ... and a fresh boot — base network rebuilt from scratch — replays
    # it before serving.
    replayed = MACEngine.load(snapshot, build_network())
    assert replayed.delta_seq == summary["delta_seq"]
    result = replayed.search(request)
    assert result.htk_vertices == after.htk_vertices
    print(f"reboot replayed to delta_seq={replayed.delta_seq}; "
          f"answers match")
